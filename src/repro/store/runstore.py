"""Persistent run registry for campaign results.

Every campaign the serving stack executes can be recorded into a
:class:`RunStore`: a single SQLite file (WAL mode, safe for threaded
writers) holding one row per run — request fingerprint, spec labels,
timing/cache statistics, terminal status — plus the merged Pareto front
as *content-addressed* design-point rows.  Identical frontier points
recorded by different runs share one ``design_points`` row, so the
registry stays compact even when hundreds of campaigns converge to the
same designs.

Named *baselines* pin a run id under a stable name (``"main"``,
``"nightly"`` ...) for the regression gate (:mod:`repro.store.gate`)
and for cross-run comparison (:mod:`repro.store.analytics`).

Two observability tables ride along: ``metrics_history`` (sampled
metric values, see :class:`~repro.obs.snapshot.MetricsSnapshotter`)
and ``trace_spans`` (finished spans from :mod:`repro.obs.trace`,
linked to their run where the trace carried a ``run_id``).  Both are
append-only with explicit pruning (``repro runs gc``).

Recording is strictly opt-in and write-only from the campaign's point
of view: a campaign run with a store produces bit-identical fronts to
one without.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.api import CampaignRequest, CampaignResponse, FrontierPoint
from repro.service.cache import stable_hash

__all__ = ["MetricsSnapshot", "RunRecord", "RunStore", "point_hash"]

#: Terminal statuses a run row may carry.
RUN_STATUSES = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    name TEXT,
    fingerprint TEXT NOT NULL,
    status TEXT NOT NULL,
    created_at REAL NOT NULL,
    wall_time_s REAL NOT NULL DEFAULT 0.0,
    evaluations INTEGER NOT NULL DEFAULT 0,
    fresh_evaluations INTEGER NOT NULL DEFAULT 0,
    engine_backend TEXT,
    specs TEXT NOT NULL,
    request TEXT,
    cache_stats TEXT,
    error TEXT,
    problem TEXT NOT NULL DEFAULT 'dcim',
    strategy TEXT,
    ga_backend TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_fingerprint ON runs(fingerprint);
CREATE INDEX IF NOT EXISTS runs_by_created ON runs(created_at);
CREATE TABLE IF NOT EXISTS design_points (
    point_hash TEXT PRIMARY KEY,
    precision TEXT NOT NULL,
    n INTEGER NOT NULL,
    h INTEGER NOT NULL,
    l INTEGER NOT NULL,
    k INTEGER NOT NULL,
    objectives TEXT NOT NULL,
    extras TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS fronts (
    run_id TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    position INTEGER NOT NULL,
    point_hash TEXT NOT NULL REFERENCES design_points(point_hash),
    PRIMARY KEY (run_id, position)
);
CREATE TABLE IF NOT EXISTS baselines (
    name TEXT PRIMARY KEY,
    run_id TEXT NOT NULL REFERENCES runs(run_id),
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics_history (
    snapshot_at REAL NOT NULL,
    source TEXT NOT NULL DEFAULT '',
    metrics TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS metrics_by_time ON metrics_history(snapshot_at);
CREATE TABLE IF NOT EXISTS trace_spans (
    trace_id TEXT NOT NULL,
    span_id TEXT NOT NULL,
    parent_id TEXT,
    name TEXT NOT NULL,
    category TEXT NOT NULL DEFAULT '',
    start_time REAL NOT NULL,
    duration_s REAL NOT NULL,
    status TEXT NOT NULL DEFAULT 'ok',
    error TEXT,
    attributes TEXT NOT NULL DEFAULT '{}',
    thread TEXT,
    source TEXT NOT NULL DEFAULT '',
    run_id TEXT,
    PRIMARY KEY (trace_id, span_id)
);
CREATE INDEX IF NOT EXISTS trace_spans_by_time ON trace_spans(start_time);
CREATE INDEX IF NOT EXISTS trace_spans_by_run ON trace_spans(run_id);
CREATE TABLE IF NOT EXISTS work_units (
    run_id TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    unit_id TEXT NOT NULL,
    spec_index INTEGER NOT NULL,
    spec TEXT NOT NULL DEFAULT '',
    worker_id TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    status TEXT NOT NULL DEFAULT '',
    wall_time_s REAL NOT NULL DEFAULT 0.0,
    evaluations INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    PRIMARY KEY (run_id, unit_id)
);
CREATE INDEX IF NOT EXISTS work_units_by_worker ON work_units(worker_id);
"""


def _summarize_strategies(response: CampaignResponse | None) -> str | None:
    """Collapse per-spec strategies into the run row's summary value.

    All-same collapses to that strategy, a mix becomes ``"mixed"``, and
    responses without strategy info (pre-kernel records) yield ``None``.
    """
    if response is None or not response.strategies:
        return None
    unique = set(response.strategies)
    return unique.pop() if len(unique) == 1 else "mixed"


def point_hash(point: FrontierPoint) -> str:
    """Content address of one frontier point (design + objectives).

    ``extras`` participates only when non-empty, so hashes of plain
    DCIM points are identical to those recorded before problems with
    extra point state existed.
    """
    payload = {
        "precision": point.precision,
        "n": point.n,
        "h": point.h,
        "l": point.l,
        "k": point.k,
        "objectives": list(point.objectives),
    }
    if point.extras:
        payload["extras"] = point.extras
    return stable_hash(payload)


@dataclass(frozen=True)
class RunRecord:
    """One registry row (front rows are fetched separately).

    Attributes:
        run_id: store-assigned identifier (``run-<hex>``).
        name: optional human label given at record time.
        fingerprint: content hash of the request (or spec set) that
            produced the run — identical workloads share it.
        status: terminal status (``done``/``failed``/``cancelled``).
        created_at: wall-clock epoch seconds when recorded.
        wall_time_s: campaign wall clock.
        evaluations / fresh_evaluations: unique genomes looked up /
            actually computed (cache misses).
        engine_backend: cost-engine backend that ran.
        specs: per-spec labels (``"<wstore>:<precision>"`` for DCIM).
        front_size: merged-frontier rows recorded for this run.
        cache_stats: cache counter snapshot (``None`` when uncached).
        error: failure/cancellation detail for non-``done`` runs.
        problem: :mod:`repro.problems` registry name the run optimised;
            analytics and the regression gate only compare runs of the
            same problem.
        strategy: exploration strategy summary — ``"ga"`` or
            ``"exhaustive"`` when every spec used that strategy,
            ``"mixed"`` otherwise, ``None`` for pre-strategy rows.
        ga_backend: resolved GA kernel backend (``numpy``/``python``),
            ``None`` for pre-kernel rows.
    """

    run_id: str
    fingerprint: str
    status: str
    created_at: float
    name: str | None = None
    wall_time_s: float = 0.0
    evaluations: int = 0
    fresh_evaluations: int = 0
    engine_backend: str | None = None
    specs: tuple[str, ...] = ()
    front_size: int = 0
    cache_stats: dict | None = None
    error: str | None = None
    problem: str = "dcim"
    strategy: str | None = None
    ga_backend: str | None = None

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "created_at": self.created_at,
            "wall_time_s": self.wall_time_s,
            "evaluations": self.evaluations,
            "fresh_evaluations": self.fresh_evaluations,
            "engine_backend": self.engine_backend,
            "specs": list(self.specs),
            "front_size": self.front_size,
            "cache_stats": self.cache_stats,
            "error": self.error,
            "problem": self.problem,
            "strategy": self.strategy,
            "ga_backend": self.ga_backend,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        payload = dict(payload)
        payload["specs"] = tuple(payload.get("specs", ()))
        return cls(**payload)

    def describe(self) -> str:
        """One-line human rendering used by ``repro runs list``."""
        label = f" ({self.name})" if self.name else ""
        via = f" via {self.strategy}" if self.strategy else ""
        return (
            f"{self.run_id}{label}: {self.problem}, {self.status}, "
            f"{len(self.specs)} specs, front {self.front_size}, "
            f"{self.evaluations} evaluations{via}, {self.wall_time_s:.2f} s"
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """One sampled row of the ``metrics_history`` table.

    Attributes:
        snapshot_at: wall-clock epoch seconds when sampled.
        source: tag of the sampling process (e.g. ``"serve"``).
        metrics: flat ``{series: value}`` sample — the shape
            :meth:`repro.obs.metrics.MetricsRegistry.sample_values`
            produces.
    """

    snapshot_at: float
    source: str
    metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "snapshot_at": self.snapshot_at,
            "source": self.source,
            "metrics": dict(self.metrics),
        }


class RunStore:
    """SQLite-backed registry of recorded campaign runs.

    Args:
        path: database file (created on first use); ``":memory:"``
            keeps the registry process-local (handy in tests).

    One connection is shared across threads (``check_same_thread=False``)
    behind an ``RLock``; the database runs in WAL mode so concurrent
    stores on the same path (other processes) read while one writes.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path) if str(path) != ":memory:" else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path) if self.path is not None else ":memory:",
            check_same_thread=False,
            timeout=30.0,  # wait out writers from other processes
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.commit()

    def _migrate(self) -> None:
        """Bring pre-v2 databases up to the current schema in place.

        ``CREATE TABLE IF NOT EXISTS`` leaves existing tables alone, so
        columns added since a database was created are backfilled here
        (``ALTER TABLE ADD COLUMN`` appends; the list is ordered by the
        release each column landed in, so altered databases end up with
        the column order of a freshly created schema).
        """
        migrations = [
            ("runs", "problem", "TEXT NOT NULL DEFAULT 'dcim'"),
            ("design_points", "extras", "TEXT NOT NULL DEFAULT '{}'"),
            ("runs", "strategy", "TEXT"),
            ("runs", "ga_backend", "TEXT"),
        ]
        for table, column, decl in migrations:
            present = {
                row[1]
                for row in self._conn.execute(f"PRAGMA table_info({table})")
            }
            if column not in present:
                try:
                    self._conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {decl}"
                    )
                except sqlite3.OperationalError as exc:
                    # Two stores opening the same pre-v2 file can race
                    # the check-then-alter; the loser finds the column
                    # already added, which is the state we wanted.
                    if "duplicate column name" not in str(exc).lower():
                        raise

    # Recording ------------------------------------------------------------
    def record_response(
        self,
        response: CampaignResponse,
        request: CampaignRequest | None = None,
        *,
        specs: tuple[str, ...] | list[str] = (),
        name: str | None = None,
        fingerprint: str | None = None,
        problem: str | None = None,
    ) -> RunRecord:
        """Record one successfully finished campaign; returns its row.

        ``fingerprint`` defaults to the request's content hash (or, for
        request-less programmatic campaigns, a hash of the spec labels);
        ``problem`` defaults to the request's (or response's) problem
        name.
        """
        return self._record(
            status="done",
            response=response,
            request=request,
            specs=tuple(specs),
            name=name,
            fingerprint=fingerprint,
            problem=problem,
        )

    def record_failure(
        self,
        status: str,
        error: str,
        request: CampaignRequest | None = None,
        *,
        specs: tuple[str, ...] | list[str] = (),
        name: str | None = None,
        fingerprint: str | None = None,
        problem: str | None = None,
    ) -> RunRecord:
        """Record a failed or cancelled campaign (no front rows)."""
        if status not in ("failed", "cancelled"):
            raise ValueError(f"status must be failed/cancelled, got {status!r}")
        return self._record(
            status=status,
            response=None,
            request=request,
            specs=tuple(specs),
            name=name,
            fingerprint=fingerprint,
            error=error,
            problem=problem,
        )

    def _record(
        self,
        status: str,
        response: CampaignResponse | None,
        request: CampaignRequest | None,
        specs: tuple[str, ...],
        name: str | None,
        fingerprint: str | None,
        error: str | None = None,
        problem: str | None = None,
    ) -> RunRecord:
        if request is not None and not specs:
            from repro.problems import get_problem

            definition = get_problem(request.problem)
            labels = []
            for spec in request.specs:
                try:
                    labels.append(definition.request_label(spec))
                except Exception:  # labels must never block recording
                    labels.append("<unlabelled spec>")
            specs = tuple(labels)
        if fingerprint is None:
            fingerprint = (
                request.fingerprint()
                if request is not None
                else stable_hash({"specs": list(specs)})
            )
        if problem is None:
            if request is not None:
                problem = request.problem
            elif response is not None:
                problem = response.problem
            else:
                problem = "dcim"
        run_id = f"run-{uuid.uuid4().hex[:12]}"
        created_at = time.time()
        frontier = response.frontier if response is not None else ()
        with self._lock:
            try:
                self._insert_run_locked(
                    run_id, name, fingerprint, status, created_at,
                    response, request, specs, error, problem, frontier,
                )
                self._conn.commit()
            except Exception:
                # A half-inserted run (row without its front) must not
                # be committed later by an unrelated write.
                self._conn.rollback()
                raise
        return RunRecord(
            run_id=run_id,
            name=name,
            fingerprint=fingerprint,
            status=status,
            created_at=created_at,
            wall_time_s=response.wall_time_s if response is not None else 0.0,
            evaluations=response.evaluations if response is not None else 0,
            fresh_evaluations=(
                response.fresh_evaluations if response is not None else 0
            ),
            engine_backend=(
                response.engine_backend if response is not None else None
            ),
            specs=specs,
            front_size=len(frontier),
            cache_stats=response.cache_stats if response is not None else None,
            error=error,
            problem=problem,
            strategy=_summarize_strategies(response),
            ga_backend=response.ga_backend if response is not None else None,
        )

    def _insert_run_locked(
        self,
        run_id: str,
        name: str | None,
        fingerprint: str,
        status: str,
        created_at: float,
        response: CampaignResponse | None,
        request: CampaignRequest | None,
        specs: tuple[str, ...],
        error: str | None,
        problem: str,
        frontier,
    ) -> None:
        self._conn.execute(
            "INSERT INTO runs (run_id, name, fingerprint, status, "
            "created_at, wall_time_s, evaluations, fresh_evaluations, "
            "engine_backend, specs, request, cache_stats, error, problem, "
            "strategy, ga_backend) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                name,
                fingerprint,
                status,
                created_at,
                response.wall_time_s if response is not None else 0.0,
                response.evaluations if response is not None else 0,
                response.fresh_evaluations if response is not None else 0,
                response.engine_backend if response is not None else None,
                json.dumps(list(specs)),
                request.to_json() if request is not None else None,
                (
                    json.dumps(response.cache_stats)
                    if response is not None and response.cache_stats is not None
                    else None
                ),
                error,
                problem,
                _summarize_strategies(response),
                response.ga_backend if response is not None else None,
            ),
        )
        for position, point in enumerate(frontier):
            digest = point_hash(point)
            self._conn.execute(
                "INSERT OR IGNORE INTO design_points "
                "(point_hash, precision, n, h, l, k, objectives, extras) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest,
                    point.precision,
                    point.n,
                    point.h,
                    point.l,
                    point.k,
                    json.dumps(list(point.objectives)),
                    # default=str matches point_hash's tolerant
                    # stable_hash: extras that hash must also store.
                    json.dumps(
                        point.extras or {}, sort_keys=True, default=str
                    ),
                ),
            )
            self._conn.execute(
                "INSERT INTO fronts (run_id, position, point_hash) "
                "VALUES (?, ?, ?)",
                (run_id, position, digest),
            )

    # Lookup ---------------------------------------------------------------
    def list_runs(
        self,
        limit: int | None = None,
        status: str | None = None,
        offset: int = 0,
        problem: str | None = None,
    ) -> list[RunRecord]:
        """Recorded runs, newest first.

        Args:
            limit / offset: page through the registry (``limit=None``
                returns everything from ``offset`` on).
            status: only runs with this terminal status.
            problem: only runs of this registered problem.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            # A negative LIMIT means "unbounded" to SQLite — exactly the
            # unpaginated read this parameter exists to prevent.
            raise ValueError(f"limit must be >= 0, got {limit}")
        query = (
            "SELECT r.*, (SELECT COUNT(*) FROM fronts f "
            "WHERE f.run_id = r.run_id) AS front_size FROM runs r"
        )
        params: list = []
        clauses = []
        if status is not None:
            clauses.append("r.status = ?")
            params.append(status)
        if problem is not None:
            clauses.append("r.problem = ?")
            params.append(problem)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY r.created_at DESC, r.rowid DESC"
        if limit is not None or offset:
            # SQLite requires a LIMIT clause to use OFFSET; -1 = no cap.
            query += " LIMIT ? OFFSET ?"
            params.extend([-1 if limit is None else limit, offset])
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._row_to_record(row) for row in rows]

    def get_run(self, run_id: str) -> RunRecord:
        """One run by id; raises :class:`KeyError` when unknown."""
        with self._lock:
            row = self._conn.execute(
                "SELECT r.*, (SELECT COUNT(*) FROM fronts f "
                "WHERE f.run_id = r.run_id) AS front_size "
                "FROM runs r WHERE r.run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown run id {run_id!r}")
        return self._row_to_record(row)

    def resolve(self, ref: str) -> RunRecord:
        """A run by id, baseline name, or run name (latest wins)."""
        with self._lock:
            try:
                return self.get_run(ref)
            except KeyError:
                pass
            row = self._conn.execute(
                "SELECT run_id FROM baselines WHERE name = ?", (ref,)
            ).fetchone()
            if row is not None:
                return self.get_run(row[0])
            row = self._conn.execute(
                "SELECT run_id FROM runs WHERE name = ? "
                "ORDER BY created_at DESC, rowid DESC LIMIT 1",
                (ref,),
            ).fetchone()
            if row is not None:
                return self.get_run(row[0])
        raise KeyError(f"no run, baseline, or run name matches {ref!r}")

    def front(self, run_id: str) -> list[FrontierPoint]:
        """The recorded merged frontier of one run, in stored order."""
        self.get_run(run_id)  # raise KeyError for unknown ids
        with self._lock:
            rows = self._conn.execute(
                "SELECT p.precision, p.n, p.h, p.l, p.k, p.objectives, "
                "p.extras FROM fronts f JOIN design_points p "
                "ON p.point_hash = f.point_hash "
                "WHERE f.run_id = ? ORDER BY f.position",
                (run_id,),
            ).fetchall()
        return [
            FrontierPoint(
                precision=precision,
                n=n,
                h=h,
                l=l,
                k=k,
                objectives=tuple(json.loads(objectives)),
                extras=json.loads(extras) if extras else {},
            )
            for precision, n, h, l, k, objectives, extras in rows
        ]

    def front_hashes(self, run_id: str) -> list[str]:
        """Content hashes of one run's front rows (diff primitive)."""
        self.get_run(run_id)
        with self._lock:
            rows = self._conn.execute(
                "SELECT point_hash FROM fronts WHERE run_id = ? "
                "ORDER BY position",
                (run_id,),
            ).fetchall()
        return [row[0] for row in rows]

    # Baselines ------------------------------------------------------------
    def set_baseline(self, name: str, run_id: str) -> None:
        """Pin ``name`` to ``run_id`` (overwrites an existing pin)."""
        self.get_run(run_id)
        with self._lock:
            self._conn.execute(
                "INSERT INTO baselines (name, run_id, updated_at) "
                "VALUES (?, ?, ?) ON CONFLICT(name) DO UPDATE SET "
                "run_id = excluded.run_id, updated_at = excluded.updated_at",
                (name, run_id, time.time()),
            )
            self._conn.commit()

    def get_baseline(self, name: str) -> RunRecord:
        """The run a baseline points at; raises :class:`KeyError`."""
        with self._lock:
            row = self._conn.execute(
                "SELECT run_id FROM baselines WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown baseline {name!r}")
        return self.get_run(row[0])

    def baselines(self) -> dict[str, str]:
        """``{name: run_id}`` of every pinned baseline."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, run_id FROM baselines ORDER BY name"
            ).fetchall()
        return dict(rows)

    # Metrics history -------------------------------------------------------
    def append_metrics_snapshot(
        self,
        metrics: dict[str, float],
        source: str = "",
        snapshot_at: float | None = None,
    ) -> MetricsSnapshot:
        """Append one flat metrics sample; returns the stored row."""
        record = MetricsSnapshot(
            snapshot_at=time.time() if snapshot_at is None else snapshot_at,
            source=source,
            metrics=dict(metrics),
        )
        with self._lock:
            self._conn.execute(
                "INSERT INTO metrics_history (snapshot_at, source, metrics) "
                "VALUES (?, ?, ?)",
                (record.snapshot_at, record.source, json.dumps(record.metrics)),
            )
            self._conn.commit()
        return record

    def metrics_history(
        self,
        limit: int | None = None,
        source: str | None = None,
        since: float | None = None,
    ) -> list[MetricsSnapshot]:
        """Sampled metrics rows, oldest first (chart-ready order).

        ``limit`` keeps the *most recent* N rows (still returned oldest
        first); ``since`` drops rows sampled before that epoch time.
        """
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        query = "SELECT snapshot_at, source, metrics FROM metrics_history"
        params: list = []
        clauses = []
        if source is not None:
            clauses.append("source = ?")
            params.append(source)
        if since is not None:
            clauses.append("snapshot_at >= ?")
            params.append(since)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        # DESC + LIMIT selects the most recent N; reverse to oldest-first.
        query += " ORDER BY snapshot_at DESC, rowid DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [
            MetricsSnapshot(
                snapshot_at=snapshot_at,
                source=source_tag,
                metrics=json.loads(metrics),
            )
            for snapshot_at, source_tag, metrics in reversed(rows)
        ]

    def prune_metrics_history(self, older_than_s: float) -> int:
        """Drop samples older than ``older_than_s`` seconds; returns count."""
        if older_than_s < 0:
            raise ValueError(f"older_than_s must be >= 0, got {older_than_s}")
        cutoff = time.time() - older_than_s
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM metrics_history WHERE snapshot_at < ?", (cutoff,)
            )
            self._conn.commit()
        return cursor.rowcount

    # Trace spans -----------------------------------------------------------
    def append_trace_spans(
        self, spans: list[dict], source: str = ""
    ) -> int:
        """Persist one finished trace's spans; returns rows written.

        ``spans`` is the :meth:`repro.obs.trace.Span.to_dict` shape.
        The trace-level ``run_id`` link is pulled from the first span
        carrying a ``run_id`` attribute (the campaign/job spans set it)
        and stamped onto every row of the trace, so
        ``trace_spans_by_run`` answers "which traces touched this run".
        Re-appending a trace is idempotent (primary key upsert).
        """
        if not spans:
            return 0
        run_id = None
        for span in spans:
            candidate = (span.get("attributes") or {}).get("run_id")
            if candidate:
                run_id = str(candidate)
                break
        rows = [
            (
                span["trace_id"],
                span["span_id"],
                span.get("parent_id"),
                span["name"],
                span.get("category") or "",
                span["start_time"],
                span["duration_s"],
                span.get("status") or "ok",
                span.get("error"),
                json.dumps(span.get("attributes") or {}, default=str),
                span.get("thread"),
                source,
                run_id,
            )
            for span in spans
        ]
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO trace_spans (trace_id, span_id, "
                "parent_id, name, category, start_time, duration_s, status, "
                "error, attributes, thread, source, run_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        return len(rows)

    def trace_list(
        self,
        limit: int | None = None,
        run_id: str | None = None,
        source: str | None = None,
    ) -> list[dict]:
        """Persisted traces as summary dicts, newest first.

        Each entry carries ``trace_id``, root ``name``, ``start_time``,
        end-to-end ``duration_s``, aggregate ``status``, ``span_count``,
        ``source``, and the linked ``run_id`` (when known).
        """
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        query = (
            "SELECT trace_id, MIN(start_time), "
            "MAX(start_time + duration_s) - MIN(start_time), COUNT(*), "
            "MAX(CASE WHEN status = 'error' THEN 1 ELSE 0 END), "
            "MAX(source), MAX(run_id) FROM trace_spans"
        )
        params: list = []
        clauses = []
        if run_id is not None:
            clauses.append("run_id = ?")
            params.append(run_id)
        if source is not None:
            clauses.append("source = ?")
            params.append(source)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " GROUP BY trace_id ORDER BY MIN(start_time) DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
            summaries = []
            for (
                trace_id, start, duration, count, errored, src, linked
            ) in rows:
                # The trace's display name is its root span's (no parent
                # inside the trace); the earliest span is the fallback
                # for traces persisted without their root.
                name_row = self._conn.execute(
                    "SELECT name FROM trace_spans WHERE trace_id = ? "
                    "ORDER BY (parent_id IS NOT NULL), start_time LIMIT 1",
                    (trace_id,),
                ).fetchone()
                summaries.append(
                    {
                        "trace_id": trace_id,
                        "name": name_row[0] if name_row else "",
                        "start_time": start,
                        "duration_s": duration,
                        "status": "error" if errored else "ok",
                        "span_count": count,
                        "source": src or "",
                        "run_id": linked,
                    }
                )
        return summaries

    def trace_spans(self, trace_id: str) -> list[dict]:
        """One persisted trace's spans, ordered by start time."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT trace_id, span_id, parent_id, name, category, "
                "start_time, duration_s, status, error, attributes, thread, "
                "source, run_id FROM trace_spans WHERE trace_id = ? "
                "ORDER BY start_time, span_id",
                (trace_id,),
            ).fetchall()
        return [
            {
                "trace_id": row[0],
                "span_id": row[1],
                "parent_id": row[2],
                "name": row[3],
                "category": row[4],
                "start_time": row[5],
                "duration_s": row[6],
                "status": row[7],
                "error": row[8],
                "attributes": json.loads(row[9]) if row[9] else {},
                "thread": row[10],
                "source": row[11],
                "run_id": row[12],
            }
            for row in rows
        ]

    def prune_trace_spans(self, older_than_s: float) -> int:
        """Drop spans started more than ``older_than_s`` seconds ago."""
        if older_than_s < 0:
            raise ValueError(f"older_than_s must be >= 0, got {older_than_s}")
        cutoff = time.time() - older_than_s
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM trace_spans WHERE start_time < ?", (cutoff,)
            )
            self._conn.commit()
        return cursor.rowcount

    # Distributed work units -------------------------------------------------
    def record_work_units(self, run_id: str, rows: list[dict]) -> int:
        """Persist the per-unit outcomes of one distributed run.

        ``rows`` is the :meth:`repro.service.distributed.WorkUnit.row`
        shape — which worker evaluated each unit, how many lease
        attempts it took, and the per-unit wall time.  Re-recording a
        unit upserts on ``(run_id, unit_id)``.
        """
        self.get_run(run_id)
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO work_units (run_id, unit_id, "
                "spec_index, spec, worker_id, attempts, status, "
                "wall_time_s, evaluations, error) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        row["unit_id"],
                        int(row.get("spec_index") or 0),
                        row.get("spec") or "",
                        row.get("worker_id"),
                        int(row.get("attempts") or 0),
                        row.get("status") or "",
                        float(row.get("wall_time_s") or 0.0),
                        int(row.get("evaluations") or 0),
                        row.get("error"),
                    )
                    for row in rows
                ],
            )
            self._conn.commit()
        return len(rows)

    def work_units(self, run_id: str) -> list[dict]:
        """One run's recorded work units, in spec order."""
        self.get_run(run_id)
        with self._lock:
            rows = self._conn.execute(
                "SELECT unit_id, spec_index, spec, worker_id, attempts, "
                "status, wall_time_s, evaluations, error FROM work_units "
                "WHERE run_id = ? ORDER BY spec_index, unit_id",
                (run_id,),
            ).fetchall()
        return [
            {
                "unit_id": row[0],
                "spec_index": row[1],
                "spec": row[2],
                "worker_id": row[3],
                "attempts": row[4],
                "status": row[5],
                "wall_time_s": row[6],
                "evaluations": row[7],
                "error": row[8],
            }
            for row in rows
        ]

    def worker_summary(self) -> list[dict]:
        """Aggregate per-worker totals across every recorded run."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT worker_id, COUNT(*), "
                "SUM(CASE WHEN status = 'done' THEN 1 ELSE 0 END), "
                "SUM(evaluations), SUM(wall_time_s) FROM work_units "
                "WHERE worker_id IS NOT NULL GROUP BY worker_id "
                "ORDER BY worker_id",
            ).fetchall()
        return [
            {
                "worker_id": row[0],
                "units": row[1],
                "units_done": row[2],
                "evaluations": row[3] or 0,
                "wall_time_s": row[4] or 0.0,
            }
            for row in rows
        ]

    # Maintenance ----------------------------------------------------------
    def delete_run(self, run_id: str) -> None:
        """Drop one run, its front rows, and any baselines pinning it."""
        self.get_run(run_id)
        with self._lock:
            self._conn.execute(
                "DELETE FROM baselines WHERE run_id = ?", (run_id,)
            )
            self._conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
            self._prune_orphan_points()
            self._conn.commit()

    def gc(
        self, keep_last: int | None = None, older_than_s: float | None = None
    ) -> int:
        """Delete old runs; baseline-pinned runs are always kept.

        Args:
            keep_last: retain this many newest runs (plus baselines).
            older_than_s: only delete runs recorded more than this many
                seconds ago.

        Returns how many runs were deleted.  At least one criterion is
        required.
        """
        if keep_last is None and older_than_s is None:
            raise ValueError("gc needs keep_last and/or older_than_s")
        with self._lock:
            pinned = set(self.baselines().values())
            records = self.list_runs()  # newest first
            doomed = []
            for index, record in enumerate(records):
                if record.run_id in pinned:
                    continue
                if keep_last is not None and index < keep_last:
                    continue
                if (
                    older_than_s is not None
                    and time.time() - record.created_at < older_than_s
                ):
                    continue
                doomed.append(record.run_id)
            for run_id in doomed:
                self._conn.execute(
                    "DELETE FROM runs WHERE run_id = ?", (run_id,)
                )
            self._prune_orphan_points()
            self._conn.commit()
        return len(doomed)

    def _prune_orphan_points(self) -> None:
        self._conn.execute(
            "DELETE FROM design_points WHERE point_hash NOT IN "
            "(SELECT DISTINCT point_hash FROM fronts)"
        )

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def point_count(self) -> int:
        """Distinct design-point rows (shared across runs by content)."""
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM design_points"
            ).fetchone()[0]

    def _row_to_record(self, row: tuple) -> RunRecord:
        (
            run_id,
            name,
            fingerprint,
            status,
            created_at,
            wall_time_s,
            evaluations,
            fresh_evaluations,
            engine_backend,
            specs,
            _request,
            cache_stats,
            error,
            problem,
            strategy,
            ga_backend,
            front_size,
        ) = row
        return RunRecord(
            run_id=run_id,
            name=name,
            fingerprint=fingerprint,
            status=status,
            created_at=created_at,
            wall_time_s=wall_time_s,
            evaluations=evaluations,
            fresh_evaluations=fresh_evaluations,
            engine_backend=engine_backend,
            specs=tuple(json.loads(specs)),
            front_size=front_size,
            cache_stats=json.loads(cache_stats) if cache_stats else None,
            error=error,
            problem=problem,
            strategy=strategy,
            ga_backend=ga_backend,
        )

    def request_of(self, run_id: str) -> CampaignRequest | None:
        """The originating request, when one was recorded."""
        self.get_run(run_id)
        with self._lock:
            row = self._conn.execute(
                "SELECT request FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return CampaignRequest.from_json(row[0]) if row[0] else None

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
