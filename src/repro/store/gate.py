"""Regression gate: fail a run whose front degraded past a baseline.

The gate is the registry's CI face: compare a candidate run against a
named baseline and produce a structured pass/fail report.  A candidate
regresses when its front quality drops beyond the configured
tolerances:

* its union-normalised hypervolume falls more than
  ``max_hypervolume_drop`` (relative) below the baseline's,
* the union-normalised additive epsilon-indicator ``eps(candidate,
  baseline)`` exceeds ``max_epsilon`` — i.e. the candidate front would
  need more than the tolerated shift (as a fraction of the union's
  objective range) to cover everything the baseline found,
* the candidate's front shrinks below ``min_front_ratio`` of the
  baseline's size.

``repro campaign --store PATH --baseline NAME`` runs the gate after
recording (seeding the baseline on first use), and ``repro runs gate``
replays it for any two recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.analytics import FrontComparison, compare_runs
from repro.store.runstore import RunRecord, RunStore

__all__ = ["GateConfig", "GateReport", "check_regression"]


@dataclass(frozen=True)
class GateConfig:
    """Tolerances of one regression check.

    Attributes:
        max_hypervolume_drop: allowed *relative* hypervolume loss
            (0.05 = the candidate may dominate up to 5% less volume).
        max_epsilon: allowed additive epsilon ``eps(candidate,
            baseline)`` on union-normalised objectives (0.05 = the
            candidate may miss the baseline by up to 5% of the
            objective range).
        min_front_ratio: candidate front size must be at least this
            fraction of the baseline's.
    """

    max_hypervolume_drop: float = 0.05
    max_epsilon: float = 0.05
    min_front_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.max_hypervolume_drop < 0 or self.max_epsilon < 0:
            raise ValueError("gate tolerances must be >= 0")
        if not 0 <= self.min_front_ratio <= 1:
            raise ValueError("min_front_ratio must be in [0, 1]")

    def to_dict(self) -> dict:
        return {
            "max_hypervolume_drop": self.max_hypervolume_drop,
            "max_epsilon": self.max_epsilon,
            "min_front_ratio": self.min_front_ratio,
        }


@dataclass(frozen=True)
class GateReport:
    """Structured outcome of one regression check.

    Attributes:
        passed: True when no tolerance was exceeded.
        baseline / candidate: the runs compared (baseline is side A).
        comparison: the full indicator set behind the verdict.
        failures: one human-readable line per exceeded tolerance.
        config: the tolerances applied.
    """

    passed: bool
    baseline: RunRecord
    candidate: RunRecord
    comparison: FrontComparison
    config: GateConfig = field(default_factory=GateConfig)
    failures: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "comparison": self.comparison.to_dict(),
            "failures": list(self.failures),
            "config": self.config.to_dict(),
        }

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"regression gate: {verdict} "
            f"(candidate {self.candidate.run_id} vs "
            f"baseline {self.baseline.run_id})",
            self.comparison.describe(),
        ]
        lines.extend(f"failure: {reason}" for reason in self.failures)
        return "\n".join(lines)


def check_regression(
    store: RunStore,
    candidate: str,
    baseline: str,
    config: GateConfig | None = None,
) -> GateReport:
    """Gate ``candidate`` against ``baseline`` (id, baseline, or name).

    The comparison puts the baseline on side A, so
    ``comparison.hypervolume_delta`` is the candidate's gain (negative
    = loss) and ``comparison.epsilon_ba`` is the shift the candidate
    needs to cover the baseline.
    """
    config = config or GateConfig()
    baseline_record = store.resolve(baseline)
    candidate_record = store.resolve(candidate)
    comparison = compare_runs(
        store, baseline_record.run_id, candidate_record.run_id
    )
    failures: list[str] = []
    if comparison.hypervolume_a > 0:
        drop = (
            comparison.hypervolume_a - comparison.hypervolume_b
        ) / comparison.hypervolume_a
        if drop > config.max_hypervolume_drop:
            failures.append(
                f"hypervolume dropped {drop:.1%} "
                f"(allowed {config.max_hypervolume_drop:.1%})"
            )
    if comparison.epsilon_ba > config.max_epsilon:
        failures.append(
            f"epsilon-indicator eps(candidate, baseline) "
            f"{comparison.epsilon_ba:.4f} exceeds {config.max_epsilon:.4f}"
        )
    min_size = config.min_front_ratio * comparison.size_a
    if comparison.size_b < min_size:
        failures.append(
            f"front shrank to {comparison.size_b} points "
            f"(< {config.min_front_ratio:.0%} of baseline's "
            f"{comparison.size_a})"
        )
    return GateReport(
        passed=not failures,
        baseline=baseline_record,
        candidate=candidate_record,
        comparison=comparison,
        config=config,
        failures=tuple(failures),
    )
