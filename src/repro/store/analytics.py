"""Front-quality analytics between recorded runs.

Everything the registry knows about a run's quality is derived from its
merged Pareto front.  This module computes the standard multi-objective
quality indicators over two fronts:

* **hypervolume** — dominated volume w.r.t. a reference box, reusing
  :func:`repro.core.pareto.hypervolume` after normalising both fronts
  over their *union* (so the two figures are directly comparable),
* **additive epsilon-indicator** — the smallest shift that makes one
  front weakly dominate the other (0 when it already does),
* **coverage** — the fraction of one front dominated-or-equalled by
  the other,
* **front diff** — added/removed/shared design points by content hash,
* **knee drift** — how far the automatic knee pick moved.

All objectives are minimised, matching the explorer's ``[A, D, E, -T]``
convention.  :func:`compare_runs` packages the lot for two runs pulled
out of a :class:`~repro.store.runstore.RunStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pareto import hypervolume, knee_point, pareto_mask
from repro.service.api import FrontierPoint
from repro.store.runstore import RunStore, point_hash

__all__ = [
    "FrontComparison",
    "compare_fronts",
    "compare_runs",
    "epsilon_indicator",
    "front_coverage",
    "knee_drift",
    "union_hypervolumes",
]

#: Reference-box margin beyond the normalised unit cube (matches
#: :meth:`repro.dse.explorer.ExplorationResult.front_hypervolume`).
REFERENCE_MARGIN = 1.1


def _objective_matrix(front: list[FrontierPoint]) -> np.ndarray:
    if not front:
        raise ValueError("front has no points")
    rows = [point.objectives for point in front]
    width = len(rows[0])
    if width == 0 or any(len(row) != width for row in rows):
        raise ValueError("front points carry inconsistent objective vectors")
    return np.asarray(rows, dtype=float)


def _paired_matrices(
    front_a: list[FrontierPoint], front_b: list[FrontierPoint]
) -> tuple[np.ndarray, np.ndarray]:
    a = _objective_matrix(front_a)
    b = _objective_matrix(front_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"fronts disagree on objective count: {a.shape[1]} vs {b.shape[1]}"
        )
    return a, b


def _union_normalize(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Scale both matrices into the union's [0, 1] box per objective."""
    union = np.vstack([a, b])
    lo = union.min(axis=0)
    hi = union.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (a - lo) / span, (b - lo) / span


def _epsilon(a: np.ndarray, b: np.ndarray) -> float:
    # eps = max over b of min over a of max over dims (a_d - b_d).
    diffs = a[:, None, :] - b[None, :, :]  # (|A|, |B|, m)
    return float(diffs.max(axis=2).min(axis=0).max())


def _coverage(a: np.ndarray, b: np.ndarray) -> float:
    covered = sum(1 for row in b if (a <= row).all(axis=1).any())
    return covered / len(b)


def union_hypervolumes(
    front_a: list[FrontierPoint], front_b: list[FrontierPoint]
) -> tuple[float, float]:
    """Hypervolume of each front, normalised over the union of both.

    Normalising per-front would make the two volumes incomparable; one
    shared [0, 1] box (with a ``REFERENCE_MARGIN`` reference point) puts
    both runs on the same scale.
    """
    na, nb = _union_normalize(*_paired_matrices(front_a, front_b))
    reference = [REFERENCE_MARGIN] * na.shape[1]
    return hypervolume(na, reference), hypervolume(nb, reference)


def epsilon_indicator(
    front_a: list[FrontierPoint], front_b: list[FrontierPoint]
) -> float:
    """Additive epsilon indicator ``I_eps+(A, B)`` (minimisation).

    The smallest ``eps`` such that every point of ``B`` is weakly
    dominated by some point of ``A`` shifted down by ``eps`` in every
    objective.  0 means ``A`` already weakly dominates all of ``B``;
    large values mean ``A`` misses regions ``B`` covers.  Computed on
    raw (unnormalised) objectives; :func:`compare_fronts` reports the
    union-normalised variant instead, which is scale-free across the
    mixed-magnitude ``[A, D, E, -T]`` objectives.
    """
    return _epsilon(*_paired_matrices(front_a, front_b))


def front_coverage(
    front_a: list[FrontierPoint], front_b: list[FrontierPoint]
) -> float:
    """Coverage ``C(A, B)``: fraction of B weakly dominated by A."""
    return _coverage(*_paired_matrices(front_a, front_b))


def _normalized_knee(objs: np.ndarray) -> np.ndarray:
    # Knee over the non-dominated subset only (stored fronts already
    # are, but synthetic/degraded fronts may not be).
    kept = objs[pareto_mask(objs)]
    return kept[knee_point(kept)]


def knee_drift(
    front_a: list[FrontierPoint], front_b: list[FrontierPoint]
) -> float:
    """Euclidean distance between the two knee picks (union-normalised)."""
    na, nb = _union_normalize(*_paired_matrices(front_a, front_b))
    return float(np.linalg.norm(_normalized_knee(na) - _normalized_knee(nb)))


@dataclass(frozen=True)
class FrontComparison:
    """Quality indicators between two fronts ``A`` (reference) and ``B``.

    Attributes:
        run_a / run_b: run ids (or labels) being compared.
        size_a / size_b: front sizes.
        hypervolume_a / hypervolume_b: union-normalised hypervolumes.
        hypervolume_delta: ``hypervolume_b - hypervolume_a`` (negative
            means B's front is worse).
        epsilon_ab: ``I_eps+(A, B)`` — how far A must shift to cover B.
        epsilon_ba: ``I_eps+(B, A)`` — how far B must shift to cover A
            (the regression gate watches this one).  Both epsilons are
            computed on union-normalised objectives, so 0.05 means "5%
            of the union's range in the worst objective" regardless of
            the raw magnitudes.
        coverage_ab / coverage_ba: mutual weak-dominance coverage.
        shared / added / removed: front-diff counts by content hash
            (``added`` = in B only, ``removed`` = in A only).
        knee_drift: normalised distance between the knee picks.
    """

    run_a: str
    run_b: str
    size_a: int
    size_b: int
    hypervolume_a: float
    hypervolume_b: float
    hypervolume_delta: float
    epsilon_ab: float
    epsilon_ba: float
    coverage_ab: float
    coverage_ba: float
    shared: int
    added: int
    removed: int
    knee_drift: float

    def to_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "size_a": self.size_a,
            "size_b": self.size_b,
            "hypervolume_a": self.hypervolume_a,
            "hypervolume_b": self.hypervolume_b,
            "hypervolume_delta": self.hypervolume_delta,
            "epsilon_ab": self.epsilon_ab,
            "epsilon_ba": self.epsilon_ba,
            "coverage_ab": self.coverage_ab,
            "coverage_ba": self.coverage_ba,
            "shared": self.shared,
            "added": self.added,
            "removed": self.removed,
            "knee_drift": self.knee_drift,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrontComparison":
        return cls(**payload)

    def describe(self) -> str:
        """Multi-line human rendering used by ``repro runs compare``."""
        return "\n".join(
            [
                f"comparing {self.run_a} (A, {self.size_a} points) vs "
                f"{self.run_b} (B, {self.size_b} points)",
                f"hypervolume: A {self.hypervolume_a:.4f}, "
                f"B {self.hypervolume_b:.4f}, "
                f"delta {self.hypervolume_delta:+.4f}",
                f"epsilon-indicator: eps(A,B) {self.epsilon_ab:.4f}, "
                f"eps(B,A) {self.epsilon_ba:.4f}",
                f"coverage: C(A,B) {self.coverage_ab:.1%}, "
                f"C(B,A) {self.coverage_ba:.1%}",
                f"front diff: {self.shared} shared, {self.added} added, "
                f"{self.removed} removed",
                f"knee drift: {self.knee_drift:.4f}",
            ]
        )


def compare_fronts(
    front_a: list[FrontierPoint],
    front_b: list[FrontierPoint],
    label_a: str = "A",
    label_b: str = "B",
) -> FrontComparison:
    """All indicators between two fronts (A is the reference side).

    Hypervolumes, epsilons, and the knee drift are all computed in the
    union-normalised [0, 1] box so they are scale-free and mutually
    comparable; coverage is invariant to the normalisation anyway.
    """
    a, b = _paired_matrices(front_a, front_b)
    na, nb = _union_normalize(a, b)
    reference = [REFERENCE_MARGIN] * na.shape[1]
    hv_a, hv_b = hypervolume(na, reference), hypervolume(nb, reference)
    hashes_a = {point_hash(p) for p in front_a}
    hashes_b = {point_hash(p) for p in front_b}
    return FrontComparison(
        run_a=label_a,
        run_b=label_b,
        size_a=len(front_a),
        size_b=len(front_b),
        hypervolume_a=hv_a,
        hypervolume_b=hv_b,
        hypervolume_delta=hv_b - hv_a,
        epsilon_ab=_epsilon(na, nb),
        epsilon_ba=_epsilon(nb, na),
        coverage_ab=_coverage(a, b),
        coverage_ba=_coverage(b, a),
        shared=len(hashes_a & hashes_b),
        added=len(hashes_b - hashes_a),
        removed=len(hashes_a - hashes_b),
        knee_drift=float(
            np.linalg.norm(_normalized_knee(na) - _normalized_knee(nb))
        ),
    )


def compare_runs(store: RunStore, ref_a: str, ref_b: str) -> FrontComparison:
    """Compare two recorded runs (by id, baseline name, or run name).

    Raises :class:`KeyError` for unknown references and
    :class:`ValueError` when the runs optimised different problems
    (their objective spaces are incomparable) or when either run
    recorded an empty front (failed or cancelled runs have nothing to
    compare).
    """
    record_a = store.resolve(ref_a)
    record_b = store.resolve(ref_b)
    if record_a.problem != record_b.problem:
        raise ValueError(
            f"cannot compare runs of different problems: "
            f"{record_a.run_id} optimised {record_a.problem!r}, "
            f"{record_b.run_id} optimised {record_b.problem!r}"
        )
    front_a = store.front(record_a.run_id)
    front_b = store.front(record_b.run_id)
    if not front_a or not front_b:
        raise ValueError(
            f"cannot compare empty fronts: {record_a.run_id} has "
            f"{len(front_a)} points, {record_b.run_id} has {len(front_b)}"
        )
    return compare_fronts(
        front_a, front_b, label_a=record_a.run_id, label_b=record_b.run_id
    )
