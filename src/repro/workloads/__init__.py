"""NN workload descriptions and macro mapping."""

from repro.workloads.layers import (
    Layer,
    attention_projection,
    conv2d,
    gcn_layer,
    linear,
)
from repro.workloads.mapping import (
    LayerMapping,
    NetworkMapping,
    map_layer,
    map_network,
    recommend_spec,
)
from repro.workloads.system import (
    SystemMapping,
    macros_for_residency,
    map_system,
    map_system_sweep,
)
from repro.workloads.networks import (
    AVAILABLE_NETWORKS,
    gcn_network,
    mlp_mixer_block,
    resnet_block,
    tiny_cnn,
    transformer_block,
)

__all__ = [
    "SystemMapping",
    "map_system",
    "map_system_sweep",
    "macros_for_residency",
    "Layer",
    "linear",
    "conv2d",
    "attention_projection",
    "gcn_layer",
    "tiny_cnn",
    "transformer_block",
    "gcn_network",
    "resnet_block",
    "mlp_mixer_block",
    "AVAILABLE_NETWORKS",
    "LayerMapping",
    "NetworkMapping",
    "map_layer",
    "map_network",
    "recommend_spec",
]
