"""Predefined example networks (the Fig. 1 application classes)."""

from __future__ import annotations

from repro.workloads.layers import (
    Layer,
    attention_projection,
    conv2d,
    gcn_layer,
    linear,
)

__all__ = [
    "tiny_cnn",
    "transformer_block",
    "gcn_network",
    "resnet_block",
    "mlp_mixer_block",
    "AVAILABLE_NETWORKS",
]


def tiny_cnn() -> list[Layer]:
    """A small edge-class CNN (CIFAR-like footprint)."""
    return [
        conv2d("conv1", in_channels=3, out_channels=32, kernel=3, out_hw=32),
        conv2d("conv2", in_channels=32, out_channels=64, kernel=3, out_hw=16),
        conv2d("conv3", in_channels=64, out_channels=128, kernel=3, out_hw=8),
        linear("fc", in_features=128 * 4 * 4, out_features=10),
    ]


def transformer_block(d_model: int = 256, seq_len: int = 128) -> list[Layer]:
    """One encoder block: QKV + output projection + 4x MLP."""
    return [
        attention_projection("attn_q", d_model, seq_len),
        attention_projection("attn_k", d_model, seq_len),
        attention_projection("attn_v", d_model, seq_len),
        attention_projection("attn_o", d_model, seq_len),
        linear("mlp_up", d_model, 4 * d_model, vectors=seq_len),
        linear("mlp_down", 4 * d_model, d_model, vectors=seq_len),
    ]


def gcn_network(nodes: int = 2048, features: int = 128, classes: int = 16) -> list[Layer]:
    """A two-layer GCN feature pipeline."""
    return [
        gcn_layer("gcn1", in_features=features, out_features=features, nodes=nodes),
        gcn_layer("gcn2", in_features=features, out_features=classes, nodes=nodes),
    ]


def resnet_block(
    in_channels: int = 64, out_channels: int = 128, out_hw: int = 28
) -> list[Layer]:
    """A ResNet-style residual block (downsampling variant).

    Two 3x3 convolutions plus the 1x1 projection shortcut that matches
    the channel count — the shapes every ImageNet-class backbone
    repeats.
    """
    return [
        conv2d("res_conv1", in_channels, out_channels, kernel=3, out_hw=out_hw),
        conv2d("res_conv2", out_channels, out_channels, kernel=3, out_hw=out_hw),
        conv2d("res_proj", in_channels, out_channels, kernel=1, out_hw=out_hw),
    ]


def mlp_mixer_block(
    tokens: int = 196,
    channels: int = 256,
    token_mlp_dim: int = 128,
    channel_mlp_dim: int = 1024,
) -> list[Layer]:
    """One MLP-Mixer block: token-mixing MLP then channel-mixing MLP.

    Token mixing multiplies along the token axis (one vector per
    channel); channel mixing along the feature axis (one vector per
    token) — all four layers are plain MVMs.
    """
    return [
        linear("token_mix_up", tokens, token_mlp_dim, vectors=channels),
        linear("token_mix_down", token_mlp_dim, tokens, vectors=channels),
        linear("channel_mix_up", channels, channel_mlp_dim, vectors=tokens),
        linear("channel_mix_down", channel_mlp_dim, channels, vectors=tokens),
    ]


#: Named network factories for the examples and benches.
AVAILABLE_NETWORKS = {
    "tiny_cnn": tiny_cnn,
    "transformer_block": transformer_block,
    "gcn_network": gcn_network,
    "resnet_block": resnet_block,
    "mlp_mixer_block": mlp_mixer_block,
}
