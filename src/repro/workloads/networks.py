"""Predefined example networks (the Fig. 1 application classes)."""

from __future__ import annotations

from repro.workloads.layers import (
    Layer,
    attention_projection,
    conv2d,
    gcn_layer,
    linear,
)

__all__ = ["tiny_cnn", "transformer_block", "gcn_network", "AVAILABLE_NETWORKS"]


def tiny_cnn() -> list[Layer]:
    """A small edge-class CNN (CIFAR-like footprint)."""
    return [
        conv2d("conv1", in_channels=3, out_channels=32, kernel=3, out_hw=32),
        conv2d("conv2", in_channels=32, out_channels=64, kernel=3, out_hw=16),
        conv2d("conv3", in_channels=64, out_channels=128, kernel=3, out_hw=8),
        linear("fc", in_features=128 * 4 * 4, out_features=10),
    ]


def transformer_block(d_model: int = 256, seq_len: int = 128) -> list[Layer]:
    """One encoder block: QKV + output projection + 4x MLP."""
    return [
        attention_projection("attn_q", d_model, seq_len),
        attention_projection("attn_k", d_model, seq_len),
        attention_projection("attn_v", d_model, seq_len),
        attention_projection("attn_o", d_model, seq_len),
        linear("mlp_up", d_model, 4 * d_model, vectors=seq_len),
        linear("mlp_down", 4 * d_model, d_model, vectors=seq_len),
    ]


def gcn_network(nodes: int = 2048, features: int = 128, classes: int = 16) -> list[Layer]:
    """A two-layer GCN feature pipeline."""
    return [
        gcn_layer("gcn1", in_features=features, out_features=features, nodes=nodes),
        gcn_layer("gcn2", in_features=features, out_features=classes, nodes=nodes),
    ]


#: Named network factories for the examples and benches.
AVAILABLE_NETWORKS = {
    "tiny_cnn": tiny_cnn,
    "transformer_block": transformer_block,
    "gcn_network": gcn_network,
}
