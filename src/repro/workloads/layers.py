"""NN layer shape descriptions for application-driven specification.

Fig. 1 of the paper motivates SEGA-DCIM with "versatile applications":
Transformers, CNNs and GNNs.  A :class:`Layer` captures exactly what the
mapper needs: weight count, the MVM geometry (fan-in rows x output
columns) and how many input vectors one inference pushes through it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Layer", "linear", "conv2d", "attention_projection", "gcn_layer"]


@dataclass(frozen=True)
class Layer:
    """One MVM-shaped NN layer.

    Attributes:
        name: human-readable identifier.
        rows: dot-product fan-in (input features per output).
        cols: number of outputs (weight columns).
        vectors: input vectors per inference (e.g. spatial positions for
            a conv, sequence length for attention, nodes for a GCN).
    """

    name: str
    rows: int
    cols: int
    vectors: int = 1

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.vectors) < 1:
            raise ValueError(f"layer {self.name!r} needs positive dimensions")

    @property
    def weight_count(self) -> int:
        """Weights in the layer (``rows * cols``)."""
        return self.rows * self.cols

    @property
    def macs(self) -> int:
        """Multiply-accumulates per inference."""
        return self.rows * self.cols * self.vectors


def linear(name: str, in_features: int, out_features: int, vectors: int = 1) -> Layer:
    """Fully-connected layer."""
    return Layer(name, rows=in_features, cols=out_features, vectors=vectors)


def conv2d(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_hw: int,
) -> Layer:
    """2-D convolution lowered to MVM (im2col).

    Rows are ``Cin * kernel^2``, columns are ``Cout`` and every output
    spatial position is one input vector.
    """
    return Layer(
        name,
        rows=in_channels * kernel * kernel,
        cols=out_channels,
        vectors=out_hw * out_hw,
    )


def attention_projection(
    name: str, d_model: int, seq_len: int, heads_dim: int | None = None
) -> Layer:
    """One of Q/K/V/O projections of a Transformer block."""
    return Layer(
        name, rows=d_model, cols=heads_dim or d_model, vectors=seq_len
    )


def gcn_layer(name: str, in_features: int, out_features: int, nodes: int) -> Layer:
    """Graph-convolution feature transform (X @ W per node)."""
    return Layer(name, rows=in_features, cols=out_features, vectors=nodes)
