"""System-level mapping: a network across multiple macro instances.

A single DCIM macro rarely serves a whole model; accelerators tile
several macro instances and either (a) run layers sequentially with all
macros teaming on one layer (data-parallel over output columns), or
(b) pipeline consecutive layers across macros.  This mapper models
both, on top of the per-layer mapping of :mod:`repro.workloads.
mapping`, and reports system area/latency/energy/throughput so users
can trade macro count against performance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.spec import DesignPoint
from repro.model.metrics import evaluate_macro
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology
from repro.workloads.layers import Layer
from repro.workloads.mapping import LayerMapping, map_layer

__all__ = ["SystemMapping", "map_system", "map_system_sweep"]


@dataclass(frozen=True)
class SystemMapping:
    """A network mapped onto ``n_macros`` identical macro instances.

    Attributes:
        design: the macro design replicated across the system.
        n_macros: instances in the system.
        schedule: ``"sequential"`` (all macros team per layer) or
            ``"pipelined"`` (layers assigned round-robin; throughput set
            by the slowest stage).
        layers: the per-layer mappings (single-macro numbers).
        latency_us: one-inference latency.
        energy_uj: one-inference energy (schedule-independent).
        throughput_inferences_s: steady-state inferences per second.
        area_mm2: total system macro area.
    """

    design: DesignPoint
    n_macros: int
    schedule: str
    layers: list[LayerMapping]
    latency_us: float
    energy_uj: float
    throughput_inferences_s: float
    area_mm2: float


def map_system(
    layers: list[Layer],
    design: DesignPoint,
    tech: Technology,
    n_macros: int = 1,
    schedule: str = "sequential",
    library: CellLibrary | None = None,
    cost=None,
) -> SystemMapping:
    """Map a network onto ``n_macros`` copies of ``design``.

    Sequential schedule: every layer's passes are split evenly over the
    macros (speedup ``min(n_macros, passes)``); latency is the sum over
    layers and throughput is ``1/latency``.

    Pipelined schedule: layer ``i`` runs on macro ``i mod n_macros``;
    the pipeline interval is the slowest macro's total work, so
    throughput is ``1/interval`` while single-inference latency is the
    sum of stage latencies.

    The optional ``cost`` short-circuits the estimation model with a
    precomputed :class:`~repro.model.macro.MacroCost` for ``design`` —
    the sweep path computes those in one engine batch.

    Raises:
        ValueError: on an unknown schedule or non-positive macro count.
    """
    if n_macros < 1:
        raise ValueError(f"n_macros must be >= 1, got {n_macros}")
    if schedule not in ("sequential", "pipelined"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if not layers:
        raise ValueError("need at least one layer")
    metrics = evaluate_macro(
        cost if cost is not None else design.macro_cost(library), tech
    )
    mapped = [map_layer(l, design, tech, library, metrics) for l in layers]
    energy = sum(m.energy_uj for m in mapped)
    area = n_macros * metrics.layout_area_mm2

    if schedule == "sequential":
        latency = sum(
            m.latency_us / min(n_macros, max(m.passes, 1)) for m in mapped
        )
        throughput = 1.0 / (latency * 1e-6)
    else:
        stage_work = [0.0] * n_macros
        for i, m in enumerate(mapped):
            stage_work[i % n_macros] += m.latency_us
        latency = sum(m.latency_us for m in mapped)
        interval = max(stage_work)
        throughput = 1.0 / (interval * 1e-6)

    return SystemMapping(
        design=design,
        n_macros=n_macros,
        schedule=schedule,
        layers=mapped,
        latency_us=latency,
        energy_uj=energy,
        throughput_inferences_s=throughput,
        area_mm2=area,
    )


def map_system_sweep(
    layers: list[Layer],
    designs: list[DesignPoint],
    tech: Technology,
    n_macros: int = 1,
    schedule: str = "sequential",
    library: CellLibrary | None = None,
    engine=None,
) -> list[SystemMapping]:
    """Map a network onto each candidate design, batching the cost models.

    Design-selection sweeps (e.g. picking the best frontier point for a
    deployment) evaluate the same network against many macro designs;
    this computes every per-design :class:`~repro.model.macro.MacroCost`
    through one shared :class:`repro.model.engine.CostEngine` — so
    component models are memoised across the whole sweep — and then maps
    each design.  Results are in input order and identical to calling
    :func:`map_system` per design.

    Args:
        engine: optional pre-warmed cost engine; one is created over
            ``library`` when omitted.
    """
    if engine is None:
        from repro.model.engine import CostEngine

        engine = CostEngine(library)
    costs = engine.macro_costs(list(designs))
    return [
        map_system(layers, design, tech, n_macros, schedule, library, cost=cost)
        for design, cost in zip(designs, costs)
    ]


def macros_for_residency(layers: list[Layer], design: DesignPoint) -> int:
    """Macros needed so every layer's tiles are simultaneously resident.

    Each macro contributes ``L`` resident tile slots; a layer needs
    ``row_tiles * col_tiles`` slots.
    """
    groups = design.n // design.precision.weight_bits
    slots_needed = 0
    for layer in layers:
        row_tiles = math.ceil(layer.rows / design.h)
        col_tiles = math.ceil(layer.cols / groups)
        slots_needed += row_tiles * col_tiles
    return max(1, math.ceil(slots_needed / design.l))
