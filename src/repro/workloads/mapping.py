"""Map NN layers onto a DCIM macro: tiles, passes, latency, energy.

The mapper tiles each layer's ``rows x cols`` weight matrix onto the
macro's ``H x (N/Bw)`` compute grid.  Each tile occupies one of the
``L`` weight-set slots; when a layer needs more tiles than ``L``, the
extra tiles are reloaded row-by-row (``H`` cycles per reload; write
energy is zero per Table III's SRAM entry, as the paper's model also
assumes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.spec import DcimSpec, DesignPoint
from repro.core.precision import parse_precision
from repro.model.metrics import MacroMetrics, evaluate_macro
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology
from repro.workloads.layers import Layer

__all__ = ["LayerMapping", "NetworkMapping", "map_layer", "map_network", "recommend_spec"]


@dataclass(frozen=True)
class LayerMapping:
    """Mapping of one layer onto a macro.

    Attributes:
        layer: the mapped layer.
        row_tiles / col_tiles: tile grid over the macro's ``H`` rows and
            ``N/Bw`` output groups.
        resident_tiles: tiles that fit in the ``L`` weight slots.
        reloads: weight reloads needed per inference.
        passes: compute passes per inference.
        cycles: total cycles (compute + reload) per inference.
        latency_us: inference latency through this layer.
        energy_uj: inference energy in this layer.
        utilization: useful MACs over offered MAC slots.
    """

    layer: Layer
    row_tiles: int
    col_tiles: int
    resident_tiles: int
    reloads: int
    passes: int
    cycles: int
    latency_us: float
    energy_uj: float
    utilization: float


@dataclass(frozen=True)
class NetworkMapping:
    """Aggregate mapping of a whole layer list."""

    layers: list[LayerMapping]
    latency_us: float
    energy_uj: float
    total_macs: int

    @property
    def tops_effective(self) -> float:
        """Achieved TOPS including tiling and reload overheads."""
        if self.latency_us == 0:
            return 0.0
        return 2 * self.total_macs / (self.latency_us * 1e-6) * 1e-12


def map_layer(
    layer: Layer,
    design: DesignPoint,
    tech: Technology,
    library: CellLibrary | None = None,
    metrics: MacroMetrics | None = None,
    overlap_reload: bool = False,
) -> LayerMapping:
    """Map one layer onto a design point.

    Args:
        layer: the layer to map.
        design: the macro design.
        tech: technology node for physical numbers.
        library: optional cell library override.
        metrics: pre-computed macro metrics (avoids re-evaluation).
        overlap_reload: model a double-buffered weight array (see the
            ``custom_template`` example): reload cycles hide behind
            compute up to the available compute time.
    """
    metrics = metrics or evaluate_macro(design.macro_cost(library), tech)
    groups = design.n // design.precision.weight_bits
    row_tiles = math.ceil(layer.rows / design.h)
    col_tiles = math.ceil(layer.cols / groups)
    tiles = row_tiles * col_tiles
    resident = min(tiles, design.l)
    reloads = max(0, tiles - design.l)
    cycles_per_pass = metrics.cycles_per_pass
    passes = tiles * layer.vectors
    compute_cycles = passes * cycles_per_pass
    reload_cycles = reloads * design.h  # row-by-row rewrite per inference
    if overlap_reload:
        reload_cycles = max(0, reload_cycles - compute_cycles)
    cycles = compute_cycles + reload_cycles
    latency_us = cycles * metrics.delay_ns * 1e-3
    energy_uj = passes * metrics.energy_per_pass_nj * 1e-3
    offered = passes * design.h * groups
    utilization = layer.macs / offered if offered else 0.0
    return LayerMapping(
        layer=layer,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        resident_tiles=resident,
        reloads=reloads,
        passes=passes,
        cycles=cycles,
        latency_us=latency_us,
        energy_uj=energy_uj,
        utilization=utilization,
    )


def map_network(
    layers: list[Layer],
    design: DesignPoint,
    tech: Technology,
    library: CellLibrary | None = None,
) -> NetworkMapping:
    """Map a whole network (layers run sequentially on one macro)."""
    metrics = evaluate_macro(design.macro_cost(library), tech)
    mapped = [map_layer(l, design, tech, library, metrics) for l in layers]
    return NetworkMapping(
        layers=mapped,
        latency_us=sum(m.latency_us for m in mapped),
        energy_uj=sum(m.energy_uj for m in mapped),
        total_macs=sum(l.macs for l in layers),
    )


def recommend_spec(layers: list[Layer], precision, **bounds) -> DcimSpec:
    """Derive a :class:`DcimSpec` from a workload.

    Chooses ``Wstore`` as the smallest power of two holding the largest
    layer (so at least one layer is fully resident), matching how the
    paper sizes macros per application.
    """
    if not layers:
        raise ValueError("need at least one layer")
    precision = parse_precision(precision)
    largest = max(layer.weight_count for layer in layers)
    wstore = 1 << max(math.ceil(math.log2(largest)), 0)
    return DcimSpec(wstore=wstore, precision=precision, **bounds)
