"""Top-level macro RTL templates (integer and floating-point).

The integer macro (Fig. 3 without the shaded FP blocks) wires the input
buffer to ``N`` columns and groups every ``Bw`` columns into one result
fusion unit.  The FP macro adds the pre-alignment front end and one
INT-to-FP converter per fused output.
"""

from __future__ import annotations

from repro.model.logic import clog2
from repro.rtl.modules import naming
from repro.rtl.verilog import VerilogModule

__all__ = ["generate_int_macro", "generate_fp_macro"]


def _macro_common(
    m: VerilogModule, n: int, h: int, l: int, k: int, bx: int, bw: int
) -> None:
    """Ports and fabric shared by both macro tops (the integer core)."""
    selw = max(clog2(l), 1)
    acc_w = bx + clog2(h)
    groups = n // bw

    m.add_port("clk", "input")
    m.add_port("clear", "input")
    m.add_port("load", "input")
    # Weight write interface: column address + per-column row data.
    m.add_port("wdata", "input", n * h)
    m.add_port("wsel", "input", l)
    m.add_port("wrow", "input", h)
    m.add_port("sel", "input", selw)

    m.add_wire("slices", h * k)
    m.add_wire("accs", n * acc_w)

    m.add_instance(
        naming.input_buffer_name(h, bx, k),
        "buffer",
        clk="clk",
        load="load",
        x="x_in",
        slice_out="slices",
    )
    m.add_block(
        "  genvar gc;\n"
        "  generate\n"
        f"    for (gc = 0; gc < {n}; gc = gc + 1) begin : columns\n"
        f"      {naming.column_name(h, l, k, bx)} column (\n"
        "        .clk(clk),\n"
        "        .clear(clear),\n"
        f"        .wdata(wdata[gc*{h} +: {h}]),\n"
        "        .wsel(wsel),\n"
        "        .wrow(wrow),\n"
        "        .sel(sel),\n"
        "        .din(slices),\n"
        f"        .acc(accs[gc*{acc_w} +: {acc_w}])\n"
        "      );\n"
        "    end\n"
        "  endgenerate"
    )
    out_w = bw + bx + clog2(h)
    m.add_wire("fused_all", groups * out_w)
    m.add_block(
        "  genvar gf;\n"
        "  generate\n"
        f"    for (gf = 0; gf < {groups}; gf = gf + 1) begin : fusion\n"
        f"      {naming.fusion_name(bw, bx, h)} fuse (\n"
        f"        .columns(accs[gf*{bw * acc_w} +: {bw * acc_w}]),\n"
        f"        .fused(fused_all[gf*{out_w} +: {out_w}])\n"
        "      );\n"
        "    end\n"
        "  endgenerate"
    )


def generate_int_macro(n: int, h: int, l: int, k: int, bx: int, bw: int) -> VerilogModule:
    """Integer macro top: buffer -> columns -> fusion -> outputs."""
    groups = n // bw
    out_w = bw + bx + clog2(h)
    m = VerilogModule(
        naming.macro_name("int-mul", n, h, l, k),
        comment=(
            f"Multiplier-based integer DCIM macro.\n"
            f"N={n} H={h} L={l} k={k} Bx={bx} Bw={bw}; "
            f"Wstore={n * h * l // bw}, SRAM={n * h * l} bits."
        ),
    )
    m.add_port("x_in", "input", h * bx)
    _macro_common(m, n, h, l, k, bx, bw)
    m.add_port("y_out", "output", groups * out_w)
    m.add_assign("y_out", "fused_all")
    return m


def generate_fp_macro(
    n: int, h: int, l: int, k: int, be: int, bm: int
) -> VerilogModule:
    """FP macro top: pre-alignment -> integer core -> INT-to-FP.

    The mantissa core is the integer fabric with ``Bx = Bw = BM``; the
    converters share ``XEmax`` as the base exponent.
    """
    bx = bw = bm
    groups = n // bw
    br = bw + bx + clog2(h)
    expw = be + 2
    m = VerilogModule(
        naming.macro_name("fp-prealign", n, h, l, k),
        comment=(
            f"Pre-aligned floating-point DCIM macro.\n"
            f"N={n} H={h} L={l} k={k} BE={be} BM={bm}; "
            f"Wstore={n * h * l // bm}."
        ),
    )
    m.add_port("xe_in", "input", h * be)
    m.add_port("xm_in", "input", h * bm)
    m.add_wire("x_in", h * bm)  # aligned mantissas feed the integer core
    m.add_instance(
        naming.prealign_name(h, be, bm),
        "prealign",
        exponents="xe_in",
        mantissas="xm_in",
        aligned="x_in",
        xemax="xemax",
    )
    m.add_wire("xemax", be)
    _macro_common(m, n, h, l, k, bx, bw)
    m.add_port("ym_out", "output", groups * br)
    m.add_port("ye_out", "output", groups * expw)
    m.add_port("yzero_out", "output", groups)
    m.add_block(
        "  genvar gv;\n"
        "  generate\n"
        f"    for (gv = 0; gv < {groups}; gv = gv + 1) begin : converters\n"
        f"      {naming.int2fp_name(br, be)} convert (\n"
        f"        .value(fused_all[gv*{br} +: {br}]),\n"
        "        .base_exp(xemax),\n"
        f"        .mantissa(ym_out[gv*{br} +: {br}]),\n"
        f"        .exponent(ye_out[gv*{expw} +: {expw}]),\n"
        "        .is_zero(yzero_out[gv])\n"
        "      );\n"
        "    end\n"
        "  endgenerate"
    )
    return m
