"""RTL templates for the integer DCIM datapath blocks.

Each generator function returns a :class:`~repro.rtl.verilog.
VerilogModule` whose widths are baked in from the design parameters
(the template-based method of Section III-C: "the netlist generation
process is converted into the Verilog code generation").

Semantics (shared with the behavioural golden model and the gate-level
netlist builders): operands are unsigned; the input streams MSB-first in
``k``-bit slices, so the shift accumulator left-shifts by ``k`` before
adding each new partial sum.
"""

from __future__ import annotations

from repro.model.logic import clog2
from repro.rtl.modules import naming
from repro.rtl.verilog import VerilogModule

__all__ = [
    "generate_sram_cell",
    "generate_compute_unit",
    "generate_adder_tree",
    "generate_shift_accumulator",
    "generate_result_fusion",
    "generate_input_buffer",
    "generate_column",
]


def generate_sram_cell() -> VerilogModule:
    """Behavioural 6T SRAM bit-cell with a hard-wired read port.

    The read is non-precharged (the stored bit drives the compute unit
    directly), matching the zero-latency SRAM assumption of Table III.
    """
    m = VerilogModule(
        "dcim_sram_cell",
        comment="6T SRAM bit-cell (behavioural): write on WL, hard-wired read.",
    )
    m.add_port("wl", "input")
    m.add_port("d", "input")
    m.add_port("q", "output", is_reg=True)
    m.add_block(
        "  always @(wl or d)\n"
        "    if (wl) q = d;"
    )
    return m


def generate_compute_unit(l: int, k: int) -> VerilogModule:
    """Compute unit (Fig. 5): L-weight bank, selection gate, NOR multiply.

    ``IN x W = INB NOR WB``: the 1-bit x k-bit product is the k-bit AND
    of the input slice with the selected weight bit, realised as NOR of
    the inverted operands.
    """
    if l < 1 or k < 1:
        raise ValueError("compute unit needs l >= 1 and k >= 1")
    selw = max(clog2(l), 1)
    m = VerilogModule(
        naming.compute_unit_name(l, k),
        comment=(
            f"Compute unit: {l} shared weights, 1-bit x {k}-bit NOR multiply.\n"
            f"Only one weight bit is selected per computation (Fig. 5)."
        ),
    )
    m.add_port("clk", "input")
    m.add_port("wdata", "input")
    m.add_port("wsel", "input", l)  # one-hot write wordlines
    m.add_port("sel", "input", selw)
    m.add_port("din", "input", k)
    m.add_port("product", "output", k)
    m.add_reg("weights", l)
    m.add_wire("wbit")
    m.add_wire("wbit_b")
    m.add_wire("din_b", k)
    m.add_block(
        "  // Weight storage: one-hot wordline write (memory array part).\n"
        "  integer wi;\n"
        "  always @(posedge clk)\n"
        "    for (wi = 0; wi < " + str(l) + "; wi = wi + 1)\n"
        "      if (wsel[wi]) weights[wi] <= wdata;"
    )
    m.add_assign("wbit", f"weights[sel]" if l > 1 else "weights[0]")
    m.add_assign("wbit_b", "~wbit")
    m.add_assign("din_b", "~din")
    m.add_assign("product", f"~(din_b | {{{k}{{wbit_b}}}})")
    return m


def generate_adder_tree(h: int, k: int) -> VerilogModule:
    """Balanced adder tree: ``h`` unsigned ``k``-bit operands.

    Emitted level by level with one-bit width growth per level, exactly
    mirroring the cost model's reconstruction; odd operands are carried
    up zero-extended.
    """
    if h < 1 or k < 1:
        raise ValueError("adder tree needs h >= 1 and k >= 1")
    out_w = k + clog2(h)
    m = VerilogModule(
        naming.adder_tree_name(h, k),
        comment=f"Adder tree: {h} x {k}-bit unsigned operands -> {out_w}-bit sum.",
    )
    m.add_port("terms", "input", h * k)
    m.add_port("total", "output", out_w)

    # Level 0 aliases the input operands.
    prev_count, prev_w, prev_name = h, k, "lvl0"
    m.add_wire(prev_name, h * k)
    m.add_assign(prev_name, "terms")
    level = 0
    while prev_count > 1:
        level += 1
        pairs, odd = divmod(prev_count, 2)
        count = pairs + odd
        width = prev_w + 1
        name = f"lvl{level}"
        m.add_wire(name, count * width)
        for i in range(pairs):
            a = f"{prev_name}[{(2 * i + 1) * prev_w - 1}:{2 * i * prev_w}]"
            b = f"{prev_name}[{(2 * i + 2) * prev_w - 1}:{(2 * i + 1) * prev_w}]"
            lhs = f"{name}[{(i + 1) * width - 1}:{i * width}]"
            m.add_assign(lhs, f"{{1'b0, {a}}} + {{1'b0, {b}}}")
        if odd:
            carried = (
                f"{prev_name}[{prev_count * prev_w - 1}:{(prev_count - 1) * prev_w}]"
            )
            lhs = f"{name}[{count * width - 1}:{pairs * width}]"
            m.add_assign(lhs, f"{{1'b0, {carried}}}")
        prev_count, prev_w, prev_name = count, width, name
    if prev_w == out_w:
        m.add_assign("total", prev_name)
    else:  # h == 1: pass-through
        m.add_assign("total", f"{{{out_w - prev_w}'b0, {prev_name}}}")
    return m


def generate_shift_accumulator(bx: int, k: int, h: int) -> VerilogModule:
    """Shift accumulator folding the bit-serial partial sums.

    Receives the adder-tree output (``k + log2 H`` bits) each cycle; the
    input streams MSB-first, so the accumulator left-shifts its state by
    ``k`` and adds.  After ``Bx / k`` cycles the register holds the full
    ``Bx``-bit-input column result.  ``clear`` restarts a pass.
    """
    in_w = k + clog2(h)
    acc_w = bx + clog2(h)
    m = VerilogModule(
        naming.accumulator_name(bx, k, h),
        comment=(
            f"Shift accumulator: acc <= (acc << {k}) + partial;"
            f" {bx // k if bx % k == 0 else 'Bx/k'} cycles per pass."
        ),
    )
    m.add_port("clk", "input")
    m.add_port("clear", "input")
    m.add_port("partial", "input", in_w)
    m.add_port("acc", "output", acc_w, is_reg=True)
    m.add_block(
        "  always @(posedge clk)\n"
        "    if (clear) acc <= 0;\n"
        f"    else acc <= (acc << {k}) + partial;"
    )
    return m


def generate_result_fusion(bw: int, bx: int, h: int) -> VerilogModule:
    """Result fusion: weighted sum of ``bw`` column accumulators.

    Column ``j`` stores weight-bit position ``j`` (column 1 = LSB), so
    its result is shifted left by ``j`` before summing; the shifts are
    constant wiring, the adders are real.
    """
    col_w = bx + clog2(h)
    out_w = bw + bx + clog2(h)
    m = VerilogModule(
        naming.fusion_name(bw, bx, h),
        comment=f"Result fusion: {bw} columns of {col_w} bits -> {out_w}-bit result.",
    )
    m.add_port("columns", "input", bw * col_w)
    m.add_port("fused", "output", out_w)
    terms = []
    for j in range(bw):
        sl = f"columns[{(j + 1) * col_w - 1}:{j * col_w}]"
        pad = out_w - col_w - j
        term = f"{{{pad}'b0, {sl}}}" if pad > 0 else sl
        terms.append(f"({term} << {j})" if j else f"{term}")
    m.add_assign("fused", " + ".join(terms))
    return m


def generate_input_buffer(h: int, bx: int, k: int) -> VerilogModule:
    """Input buffer: loads ``h`` operands, streams ``k`` bits per cycle.

    On ``load`` the full ``h * bx`` input vector is captured; every
    following cycle each operand's next most-significant ``k``-bit slice
    appears on ``slice_out`` (``h * k`` bits per cycle, Fig. 3).
    """
    if bx % k:
        raise ValueError(f"k={k} must divide bx={bx}")
    cycles = bx // k
    cntw = max(clog2(cycles), 1)
    m = VerilogModule(
        naming.input_buffer_name(h, bx, k),
        comment=(
            f"Input buffer: {h} x {bx}-bit operands, {k} bits/cycle MSB first "
            f"({cycles} cycles/pass)."
        ),
    )
    m.add_port("clk", "input")
    m.add_port("load", "input")
    m.add_port("x", "input", h * bx)
    m.add_port("slice_out", "output", h * k)
    m.add_reg("store", h * bx)
    m.add_reg("cycle", cntw)
    m.add_block(
        "  always @(posedge clk)\n"
        "    if (load) begin\n"
        "      store <= x;\n"
        "      cycle <= 0;\n"
        "    end else begin\n"
        f"      cycle <= (cycle == {cycles - 1}) ? {cntw}'d0 : cycle + 1'b1;\n"
        "    end"
    )
    # Slice extraction: operand i occupies store[i*bx +: bx]; the slice
    # for cycle c is bits [bx-1-c*k -: k].
    m.add_block(
        "  genvar gi;\n"
        "  generate\n"
        f"    for (gi = 0; gi < {h}; gi = gi + 1) begin : slicing\n"
        f"      assign slice_out[gi*{k} +: {k}] = "
        f"store[gi*{bx} + {bx - 1} - cycle*{k} -: {k}];\n"
        "    end\n"
        "  endgenerate"
    )
    return m


def generate_column(h: int, l: int, k: int, bx: int) -> VerilogModule:
    """One DCIM column: ``h`` compute units, adder tree, accumulator."""
    selw = max(clog2(l), 1)
    tree_w = k + clog2(h)
    acc_w = bx + clog2(h)
    m = VerilogModule(
        naming.column_name(h, l, k, bx),
        comment=(
            f"DCIM column: {h} compute units (L={l}) -> adder tree -> "
            f"shift accumulator."
        ),
    )
    m.add_port("clk", "input")
    m.add_port("clear", "input")
    m.add_port("wdata", "input", h)  # one write bit per compute unit row
    m.add_port("wsel", "input", l)  # shared one-hot wordlines
    m.add_port("wrow", "input", h)  # row write enables
    m.add_port("sel", "input", selw)
    m.add_port("din", "input", h * k)
    m.add_port("acc", "output", acc_w)
    m.add_wire("products", h * k)
    m.add_wire("tree_total", tree_w)
    m.add_wire("wsel_gated", h * l)
    m.add_block(
        "  genvar gr;\n"
        "  generate\n"
        f"    for (gr = 0; gr < {h}; gr = gr + 1) begin : rows\n"
        f"      assign wsel_gated[gr*{l} +: {l}] = "
        f"wsel & {{{l}{{wrow[gr]}}}};\n"
        "    end\n"
        "  endgenerate"
    )
    m.add_block(
        "  genvar gu;\n"
        "  generate\n"
        f"    for (gu = 0; gu < {h}; gu = gu + 1) begin : units\n"
        f"      {naming.compute_unit_name(l, k)} unit (\n"
        "        .clk(clk),\n"
        "        .wdata(wdata[gu]),\n"
        f"        .wsel(wsel_gated[gu*{l} +: {l}]),\n"
        "        .sel(sel),\n"
        f"        .din(din[gu*{k} +: {k}]),\n"
        f"        .product(products[gu*{k} +: {k}])\n"
        "      );\n"
        "    end\n"
        "  endgenerate"
    )
    m.add_instance(
        naming.adder_tree_name(h, k),
        "tree",
        terms="products",
        total="tree_total",
    )
    m.add_instance(
        naming.accumulator_name(bx, k, h),
        "accumulator",
        clk="clk",
        clear="clear",
        partial="tree_total",
        acc="acc",
    )
    return m
