"""Per-block RTL templates used by the template-based generator."""

from repro.rtl.modules import naming
from repro.rtl.modules.datapath import (
    generate_adder_tree,
    generate_column,
    generate_compute_unit,
    generate_input_buffer,
    generate_result_fusion,
    generate_shift_accumulator,
    generate_sram_cell,
)
from repro.rtl.modules.fp import generate_int2fp, generate_prealign
from repro.rtl.modules.memory import generate_sram_array, sram_array_name
from repro.rtl.modules.macro import generate_fp_macro, generate_int_macro

__all__ = [
    "naming",
    "generate_sram_cell",
    "generate_compute_unit",
    "generate_adder_tree",
    "generate_shift_accumulator",
    "generate_result_fusion",
    "generate_input_buffer",
    "generate_column",
    "generate_prealign",
    "generate_sram_array",
    "sram_array_name",
    "generate_int2fp",
    "generate_int_macro",
    "generate_fp_macro",
]
