"""Memory-array RTL generation (Section III-C, "memory array" part).

The paper generates the memory array by duplicating a fixed bit-cell
according to a simple rule.  :func:`generate_sram_array` does exactly
that: it tiles ``dcim_sram_cell`` instances into a rows x cols array
with per-row wordlines, matching the weight-bank organisation of the
compute units (each compute unit reads an ``L``-cell bank hard-wired to
its selection gate).
"""

from __future__ import annotations

from repro.rtl.modules import naming
from repro.rtl.verilog import VerilogModule

__all__ = ["generate_sram_array", "sram_array_name"]


def sram_array_name(rows: int, cols: int) -> str:
    """Module name for a rows x cols SRAM tile."""
    return f"dcim_sram_array_r{rows}_c{cols}"


def generate_sram_array(rows: int, cols: int) -> VerilogModule:
    """Tile ``rows x cols`` SRAM bit-cells with per-row wordlines.

    Ports: ``wl`` (rows, one-hot write wordlines), ``d`` (cols, write
    data shared down each column), ``q`` (rows*cols, hard-wired read
    outputs, row-major).

    The duplication rule is the paper's: the netlist is pure repetition
    of the user-provided bit-cell (``dcim_sram_cell``).
    """
    if rows < 1 or cols < 1:
        raise ValueError("sram array needs rows >= 1 and cols >= 1")
    m = VerilogModule(
        sram_array_name(rows, cols),
        comment=(
            f"SRAM array: {rows} rows x {cols} cols = {rows * cols} "
            "bit-cells, duplicated from dcim_sram_cell."
        ),
    )
    m.add_port("wl", "input", rows)
    m.add_port("d", "input", cols)
    m.add_port("q", "output", rows * cols)
    m.add_block(
        "  genvar gr, gc;\n"
        "  generate\n"
        f"    for (gr = 0; gr < {rows}; gr = gr + 1) begin : row\n"
        f"      for (gc = 0; gc < {cols}; gc = gc + 1) begin : col\n"
        "        dcim_sram_cell cell (\n"
        "          .wl(wl[gr]),\n"
        "          .d(d[gc]),\n"
        f"          .q(q[gr*{cols} + gc])\n"
        "        );\n"
        "      end\n"
        "    end\n"
        "  endgenerate"
    )
    return m
