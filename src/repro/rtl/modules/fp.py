"""RTL templates for the floating-point blocks (pre-alignment, INT-to-FP).

The pre-alignment block implements Fig. 3's "FP Pre-alignment": a
comparison tree finds the maximum input exponent ``XEmax``; each input's
mantissa is right-shifted by ``XEmax - XE`` so all mantissas share the
``XEmax`` scale and can enter the integer array directly.

The INT-to-FP converter normalises the fused integer result back into
sign/exponent/mantissa form.
"""

from __future__ import annotations

from repro.model.logic import clog2
from repro.rtl.modules import naming
from repro.rtl.verilog import VerilogModule

__all__ = ["generate_prealign", "generate_int2fp"]


def generate_prealign(h: int, be: int, bm: int) -> VerilogModule:
    """FP pre-alignment: max-exponent tree + per-input mantissa shift.

    Ports carry the ``h`` exponents (``be`` bits each) and ``h``
    significands (``bm`` bits each, hidden bit already prepended); the
    outputs are the aligned significands and ``XEmax``.
    """
    if h < 1 or be < 1 or bm < 1:
        raise ValueError("prealign needs h, be, bm >= 1")
    m = VerilogModule(
        naming.prealign_name(h, be, bm),
        comment=(
            f"FP pre-alignment: {h} inputs, {be}-bit exponents, "
            f"{bm}-bit significands.\n"
            "Max-exponent comparison tree, then per-input right shift by "
            "(XEmax - XE)."
        ),
    )
    m.add_port("exponents", "input", h * be)
    m.add_port("mantissas", "input", h * bm)
    m.add_port("aligned", "output", h * bm)
    m.add_port("xemax", "output", be)

    # Max tree, one level at a time (same construction as the adder tree).
    prev_count, prev_name = h, "max_lvl0"
    m.add_wire(prev_name, h * be)
    m.add_assign(prev_name, "exponents")
    level = 0
    while prev_count > 1:
        level += 1
        pairs, odd = divmod(prev_count, 2)
        count = pairs + odd
        name = f"max_lvl{level}"
        m.add_wire(name, count * be)
        for i in range(pairs):
            a = f"{prev_name}[{(2 * i + 1) * be - 1}:{2 * i * be}]"
            b = f"{prev_name}[{(2 * i + 2) * be - 1}:{(2 * i + 1) * be}]"
            lhs = f"{name}[{(i + 1) * be - 1}:{i * be}]"
            m.add_assign(lhs, f"({a} > {b}) ? {a} : {b}")
        if odd:
            carried = f"{prev_name}[{prev_count * be - 1}:{(prev_count - 1) * be}]"
            m.add_assign(f"{name}[{count * be - 1}:{pairs * be}]", carried)
        prev_count, prev_name = count, name
    m.add_assign("xemax", prev_name)

    # Offset subtract + barrel shift per input.
    m.add_block(
        "  genvar ga;\n"
        "  generate\n"
        f"    for (ga = 0; ga < {h}; ga = ga + 1) begin : align\n"
        f"      wire [{be - 1}:0] offset;\n"
        f"      assign offset = xemax - exponents[ga*{be} +: {be}];\n"
        f"      assign aligned[ga*{bm} +: {bm}] = "
        f"mantissas[ga*{bm} +: {bm}] >> offset;\n"
        "    end\n"
        "  endgenerate"
    )
    return m


def generate_int2fp(br: int, be: int) -> VerilogModule:
    """INT-to-FP converter: normalise a ``br``-bit magnitude result.

    Finds the leading one, left-aligns the mantissa and computes the
    exponent as ``base_exp + position``; a zero input maps to exponent
    zero.  The output keeps the full ``br``-bit normalised mantissa (the
    consumer truncates/rounds to its format's field width).
    """
    if br < 1 or be < 1:
        raise ValueError("int2fp needs br >= 1 and be >= 1")
    posw = max(clog2(br + 1), 1)
    expw = be + 2  # headroom for base + position
    m = VerilogModule(
        naming.int2fp_name(br, be),
        comment=(
            f"INT-to-FP converter: {br}-bit fused result -> normalised "
            f"mantissa + exponent."
        ),
    )
    m.add_port("value", "input", br)
    m.add_port("base_exp", "input", be)
    m.add_port("mantissa", "output", br, is_reg=True)
    m.add_port("exponent", "output", expw, is_reg=True)
    m.add_port("is_zero", "output")
    m.add_reg("lead", posw)
    m.add_assign("is_zero", f"(value == {br}'d0)")
    m.add_block(
        "  integer li;\n"
        "  always @* begin\n"
        f"    lead = {posw}'d0;\n"
        f"    for (li = 0; li < {br}; li = li + 1)\n"
        "      if (value[li]) lead = li;\n"
        "  end"
    )
    m.add_block(
        "  always @* begin\n"
        "    if (is_zero) begin\n"
        f"      mantissa = {br}'d0;\n"
        f"      exponent = {expw}'d0;\n"
        "    end else begin\n"
        f"      mantissa = value << ({br - 1} - lead);\n"
        "      exponent = base_exp + lead;\n"
        "    end\n"
        "  end"
    )
    return m
