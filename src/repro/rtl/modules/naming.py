"""Deterministic module naming for generated RTL.

Every generated module name encodes its structural parameters so that
bundles for different design points can coexist in one workspace
(mirroring how the paper's generator specialises templates per design).
"""

from __future__ import annotations

__all__ = [
    "compute_unit_name",
    "adder_tree_name",
    "accumulator_name",
    "fusion_name",
    "input_buffer_name",
    "column_name",
    "prealign_name",
    "int2fp_name",
    "macro_name",
]


def compute_unit_name(l: int, k: int) -> str:
    """Compute unit serving ``l`` weights with a ``k``-bit multiply."""
    return f"dcim_compute_unit_l{l}_k{k}"


def adder_tree_name(h: int, k: int) -> str:
    """Adder tree over ``h`` operands of ``k`` bits."""
    return f"dcim_adder_tree_h{h}_k{k}"


def accumulator_name(bx: int, k: int, h: int) -> str:
    """Shift accumulator for ``bx``-bit inputs streamed ``k`` bits/cycle."""
    return f"dcim_shift_accumulator_b{bx}_k{k}_h{h}"


def fusion_name(bw: int, bx: int, h: int) -> str:
    """Result fusion over ``bw`` column results."""
    return f"dcim_result_fusion_w{bw}_b{bx}_h{h}"


def input_buffer_name(h: int, bx: int, k: int) -> str:
    """Input buffer for ``h`` operands of ``bx`` bits, ``k`` bits/cycle."""
    return f"dcim_input_buffer_h{h}_b{bx}_k{k}"


def column_name(h: int, l: int, k: int, bx: int) -> str:
    """One DCIM column (compute units + tree + accumulator)."""
    return f"dcim_column_h{h}_l{l}_k{k}_b{bx}"


def prealign_name(h: int, be: int, bm: int) -> str:
    """FP pre-alignment block."""
    return f"dcim_fp_prealign_h{h}_e{be}_m{bm}"


def int2fp_name(br: int, be: int) -> str:
    """INT-to-FP converter for a ``br``-bit fused result."""
    return f"dcim_int2fp_r{br}_e{be}"


def macro_name(arch: str, n: int, h: int, l: int, k: int) -> str:
    """Top-level macro."""
    kind = "int" if arch == "int-mul" else "fp"
    return f"dcim_macro_{kind}_n{n}_h{h}_l{l}_k{k}"
