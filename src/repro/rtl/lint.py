"""A lightweight structural linter for the generated Verilog.

A commercial flow would elaborate the netlist and fail on undefined
modules, port mismatches or unbalanced constructs; this linter performs
the same sanity layer on the emitted source so bundle regressions are
caught without a simulator:

* balanced ``module/endmodule``, ``begin/end``, ``generate/endgenerate``,
  ``case/endcase`` and parentheses,
* every instantiated module is defined in the bundle (or whitelisted),
* named port connections reference ports the target module declares,
* no duplicate module definitions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.rtl.generator import RtlBundle

__all__ = ["LintReport", "lint_source", "lint_bundle"]

_MODULE_RE = re.compile(r"^\s*module\s+(\w+)\s*\(([^)]*)\)\s*;", re.M)
_KEYWORD_PAIRS = (
    ("module", "endmodule"),
    ("begin", "end"),
    ("generate", "endgenerate"),
    ("case", "endcase"),
)
# An instantiation: identifier identifier ( ... with named pins.
_INSTANCE_RE = re.compile(r"^\s*(\w+)\s+(\w+)\s*\(\s*$", re.M)
_PIN_RE = re.compile(r"\.(\w+)\s*\(")


def _strip_comments(source: str) -> str:
    source = re.sub(r"//[^\n]*", "", source)
    return re.sub(r"/\*.*?\*/", "", source, flags=re.S)


def _count_token(text: str, token: str) -> int:
    return len(re.findall(rf"\b{token}\b", text))


@dataclass
class LintReport:
    """Outcome of a lint run."""

    errors: list[str] = field(default_factory=list)
    modules: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no errors were found."""
        return not self.errors

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "CLEAN" if self.passed else f"{len(self.errors)} errors"
        return f"lint: {status}, {len(self.modules)} modules"


def lint_source(source: str, known_modules: set[str] | None = None) -> LintReport:
    """Lint one Verilog source string (may contain several modules)."""
    report = LintReport()
    text = _strip_comments(source)

    for opener, closer in _KEYWORD_PAIRS:
        n_open = _count_token(text, opener)
        # 'end' also terminates 'begin' blocks only; endmodule/endcase
        # and endgenerate are distinct tokens so plain counting works.
        n_close = _count_token(text, closer)
        if opener == "begin":
            # 'end' appears in endmodule etc. only as distinct words, so
            # \b counting is already exact.
            pass
        if n_open != n_close:
            report.errors.append(
                f"unbalanced {opener}/{closer}: {n_open} vs {n_close}"
            )
    if text.count("(") != text.count(")"):
        report.errors.append("unbalanced parentheses")

    # Module table with port lists.
    ports_by_module: dict[str, set[str]] = {}
    for match in _MODULE_RE.finditer(text):
        name, port_list = match.groups()
        if name in ports_by_module:
            report.errors.append(f"duplicate module definition: {name}")
        ports_by_module[name] = {
            p.strip() for p in port_list.split(",") if p.strip()
        }
    report.modules = list(ports_by_module)

    known = set(ports_by_module) | (known_modules or set())
    keywords = {
        "module", "endmodule", "begin", "end", "if", "else", "for",
        "always", "assign", "wire", "reg", "input", "output", "generate",
        "endgenerate", "genvar", "integer", "localparam", "case", "endcase",
        "task", "endtask", "initial", "repeat",
    }
    # Instantiations: "<module> <inst> (" at line start, followed by pins.
    for match in _INSTANCE_RE.finditer(text):
        module_name, _inst = match.groups()
        if module_name in keywords:
            continue
        if module_name not in known:
            report.errors.append(f"undefined module instantiated: {module_name}")
            continue
        # Check the named pins against the target's ports.
        tail = text[match.end():]
        close = tail.find(");")
        pins = set(_PIN_RE.findall(tail[: close if close >= 0 else None]))
        unknown = pins - ports_by_module.get(module_name, pins)
        for pin in sorted(unknown):
            report.errors.append(
                f"instance of {module_name} connects unknown port .{pin}"
            )
    return report


def lint_bundle(bundle: RtlBundle) -> LintReport:
    """Lint a whole generated bundle as one compilation unit."""
    return lint_source(bundle.source)
