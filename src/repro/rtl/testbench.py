"""Self-checking Verilog testbench generation.

For users who take the generated bundle into a real simulator, this
emits a testbench whose stimulus and expected outputs are computed by
the *verified* behavioural model (:class:`repro.func.macro_model.
IntMacroModel`), so the golden vectors inherit the gate-level
equivalence guarantees established in :mod:`repro.netlist.verify`.

Timing contract (matching the RTL templates):

* cycle 0 — weights pre-written; assert ``load`` + ``clear`` with the
  input vector on ``x_in``;
* cycles 1 .. Bx/k — the buffer streams MSB-first slices and the
  accumulators fold them;
* after the last cycle ``y_out`` holds the fused results.
"""

from __future__ import annotations

import numpy as np

from repro.core.spec import DesignPoint
from repro.func.macro_model import IntMacroModel
from repro.model.logic import clog2
from repro.rtl.generator import RtlBundle

__all__ = ["generate_int_testbench"]


def _hex(value: int, width: int) -> str:
    return f"{width}'h{value:x}"


def generate_int_testbench(
    bundle: RtlBundle, vectors: int = 4, seed: int = 0
) -> str:
    """Emit a self-checking testbench for an integer macro bundle.

    Args:
        bundle: output of :func:`repro.rtl.generator.generate_rtl` for
            an integer design.
        vectors: random (weights, input) trials to embed.
        seed: RNG seed for reproducible vectors.

    Returns:
        Verilog source of module ``tb_<top>``.
    """
    design: DesignPoint = bundle.design
    p = design.precision
    if p.is_float:
        raise ValueError("generate_int_testbench needs an integer design")
    n, h, l, k = design.n, design.h, design.l, design.k
    bx = bw = p.bits
    groups = n // bw
    out_w = bw + bx + clog2(h)
    selw = max(clog2(l), 1)
    cycles = bx // k
    rng = np.random.default_rng(seed)
    model = IntMacroModel(design)

    lines = [
        f"// Self-checking testbench for {bundle.top}",
        f"// {vectors} random vectors; golden outputs from the verified",
        "// behavioural model.",
        "`timescale 1ns/1ps",
        f"module tb_{bundle.top};",
        "  reg clk = 0;",
        "  reg clear = 0;",
        "  reg load = 0;",
        f"  reg [{n * h - 1}:0] wdata = 0;",
        f"  reg [{l - 1}:0] wsel = 0;",
        f"  reg [{h - 1}:0] wrow = 0;",
        f"  reg [{selw - 1}:0] sel = 0;",
        f"  reg [{h * bx - 1}:0] x_in = 0;",
        f"  wire [{groups * out_w - 1}:0] y_out;",
        "  integer errors = 0;",
        "",
        f"  {bundle.top} dut (",
        "    .clk(clk), .clear(clear), .load(load), .wdata(wdata),",
        "    .wsel(wsel), .wrow(wrow), .sel(sel), .x_in(x_in), .y_out(y_out)",
        "  );",
        "",
        "  always #0.5 clk = ~clk;",
        "",
        f"  task check(input [{groups * out_w - 1}:0] expected);",
        "    begin",
        "      if (y_out !== expected) begin",
        '        $display("MISMATCH: got %h want %h", y_out, expected);',
        "        errors = errors + 1;",
        "      end",
        "    end",
        "  endtask",
        "",
        "  initial begin",
    ]

    for t in range(vectors):
        w_sets = rng.integers(0, 2**bw, size=(l, h, groups))
        x = rng.integers(0, 2**bx, size=h)
        sel_v = int(rng.integers(0, l))
        model.weights = w_sets.astype(np.int64)
        expected_words = model.matvec(x, sel=sel_v)
        expected = 0
        for g, word in enumerate(expected_words):
            expected |= int(word) << (g * out_w)
        lines.append(f"    // ---- vector {t} (sel={sel_v}) ----")
        # Write each weight set: one clock per set, all rows enabled.
        for li in range(l):
            packed = 0
            for c in range(n):
                g, j = divmod(c, bw)
                for row in range(h):
                    bit = (int(w_sets[li, row, g]) >> j) & 1
                    packed |= bit << (c * h + row)
            lines.append(f"    wsel = {_hex(1 << li, l)};")
            lines.append(f"    wrow = {{{h}{{1'b1}}}};")
            lines.append(f"    wdata = {_hex(packed, n * h)};")
            lines.append("    @(posedge clk);")
        lines.append(f"    wsel = 0; wrow = 0; sel = {_hex(sel_v, selw)};")
        x_packed = 0
        for row in range(h):
            x_packed |= int(x[row]) << (row * bx)
        lines.append(f"    x_in = {_hex(x_packed, h * bx)};")
        lines.append("    load = 1; clear = 1;")
        lines.append("    @(posedge clk);")
        lines.append("    load = 0; clear = 0;")
        lines.append(f"    repeat ({cycles}) @(posedge clk);")
        lines.append("    #0.1;")
        lines.append(f"    check({_hex(expected, groups * out_w)});")
    lines.extend(
        [
            '    if (errors == 0) $display("TESTBENCH PASS");',
            '    else $display("TESTBENCH FAIL: %0d errors", errors);',
            "    $finish;",
            "  end",
            "endmodule",
        ]
    )
    return "\n".join(lines) + "\n"
