"""A small Verilog-2001 source builder.

The template-based generator emits plain-text Verilog.  This module
keeps the emission structured: a :class:`VerilogModule` collects ports,
nets, assigns, always blocks and submodule instances, then renders a
formatted source string.  It is a *builder*, not a parser — just enough
structure to keep the templates readable and the output consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Port", "Instance", "VerilogModule", "render_modules"]

_DIRECTIONS = ("input", "output", "inout")


def _bus(width: int) -> str:
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return "" if width == 1 else f"[{width - 1}:0] "


@dataclass(frozen=True)
class Port:
    """One module port."""

    name: str
    direction: str
    width: int = 1
    is_reg: bool = False

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"bad port direction {self.direction!r}")
        if self.width < 1:
            raise ValueError(f"port {self.name!r} needs width >= 1")

    def declaration(self) -> str:
        reg = "reg " if self.is_reg else ""
        return f"{self.direction} {reg}{_bus(self.width)}{self.name}"


@dataclass(frozen=True)
class Instance:
    """One submodule instantiation."""

    module: str
    name: str
    connections: dict[str, str]

    def render(self, indent: str = "  ") -> str:
        pins = ",\n".join(
            f"{indent}  .{pin}({net})" for pin, net in self.connections.items()
        )
        return f"{indent}{self.module} {self.name} (\n{pins}\n{indent});"


class VerilogModule:
    """Accumulates the contents of one Verilog module, then renders it."""

    def __init__(self, name: str, comment: str = "") -> None:
        self.name = name
        self.comment = comment
        self.ports: list[Port] = []
        self.wires: list[tuple[str, int]] = []
        self.regs: list[tuple[str, int]] = []
        self.localparams: list[tuple[str, str]] = []
        self.assigns: list[tuple[str, str]] = []
        self.blocks: list[str] = []
        self.instances: list[Instance] = []

    # Declarations ---------------------------------------------------------
    def add_port(
        self, name: str, direction: str, width: int = 1, is_reg: bool = False
    ) -> None:
        """Declare one port (in declaration order)."""
        if any(p.name == name for p in self.ports):
            raise ValueError(f"duplicate port {name!r} in module {self.name!r}")
        self.ports.append(Port(name, direction, width, is_reg))

    def add_wire(self, name: str, width: int = 1) -> None:
        """Declare an internal wire."""
        self.wires.append((name, width))

    def add_reg(self, name: str, width: int = 1) -> None:
        """Declare an internal reg."""
        self.regs.append((name, width))

    def add_localparam(self, name: str, value: str | int) -> None:
        """Declare a localparam."""
        self.localparams.append((name, str(value)))

    # Behaviour ------------------------------------------------------------
    def add_assign(self, lhs: str, rhs: str) -> None:
        """Add a continuous assignment."""
        self.assigns.append((lhs, rhs))

    def add_block(self, text: str) -> None:
        """Add a raw behavioural block (always/generate), pre-indented."""
        self.blocks.append(text.rstrip())

    def add_instance(self, module: str, name: str, **connections: str) -> None:
        """Instantiate a submodule with named port connections."""
        self.instances.append(Instance(module, name, connections))

    # Rendering ------------------------------------------------------------
    def render(self) -> str:
        """Emit the module as formatted Verilog-2001 source."""
        lines: list[str] = []
        if self.comment:
            for row in self.comment.splitlines():
                lines.append(f"// {row}")
        port_names = ", ".join(p.name for p in self.ports)
        lines.append(f"module {self.name} ({port_names});")
        for port in self.ports:
            lines.append(f"  {port.declaration()};")
        for name, value in self.localparams:
            lines.append(f"  localparam {name} = {value};")
        for name, width in self.wires:
            lines.append(f"  wire {_bus(width)}{name};")
        for name, width in self.regs:
            lines.append(f"  reg {_bus(width)}{name};")
        if self.assigns:
            lines.append("")
            for lhs, rhs in self.assigns:
                lines.append(f"  assign {lhs} = {rhs};")
        for block in self.blocks:
            lines.append("")
            lines.append(block)
        for inst in self.instances:
            lines.append("")
            lines.append(inst.render())
        lines.append("endmodule")
        return "\n".join(lines) + "\n"


def render_modules(modules: list[VerilogModule]) -> str:
    """Concatenate several modules into one source file."""
    return "\n".join(m.render() for m in modules)
