"""Template-based DCIM netlist generator (Section III-C).

Given a selected Pareto design point, the generator specialises the
architecture template into a bundle of Verilog modules: the memory array
and compute units, the DCIM compute components, and the digital
peripherals, plus the macro top.  New architectures can be plugged in by
registering an :class:`ArchitectureTemplate` (the extensibility claim of
the paper's contribution list).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path

from repro.core.spec import FP_ARCH, INT_ARCH, DesignPoint
from repro.model.logic import clog2
from repro.rtl.modules import naming
from repro.rtl.modules.datapath import (
    generate_adder_tree,
    generate_column,
    generate_compute_unit,
    generate_input_buffer,
    generate_result_fusion,
    generate_shift_accumulator,
    generate_sram_cell,
)
from repro.rtl.modules.fp import generate_int2fp, generate_prealign
from repro.rtl.modules.macro import generate_fp_macro, generate_int_macro
from repro.rtl.verilog import VerilogModule

__all__ = [
    "RtlBundle",
    "ArchitectureTemplate",
    "IntMacroTemplate",
    "FpMacroTemplate",
    "register_template",
    "available_templates",
    "generate_rtl",
    "write_bundle",
]


@dataclass(frozen=True)
class RtlBundle:
    """Generated RTL for one design point.

    Attributes:
        design: the design point the bundle implements.
        top: name of the top-level module.
        modules: module name -> Verilog source, in dependency order.
    """

    design: DesignPoint
    top: str
    modules: dict[str, str]

    @property
    def source(self) -> str:
        """All modules concatenated into one source file."""
        return "\n".join(self.modules.values())

    def module_names(self) -> list[str]:
        """Names of the generated modules (dependency order)."""
        return list(self.modules)


class ArchitectureTemplate(abc.ABC):
    """One synthesizable DCIM architecture template."""

    #: Architecture identifier matching ``DesignPoint.arch``.
    name: str = ""

    @abc.abstractmethod
    def generate(self, design: DesignPoint) -> RtlBundle:
        """Specialise the template for a design point."""

    @staticmethod
    def _collect(design: DesignPoint, top: VerilogModule, parts: list[VerilogModule]) -> RtlBundle:
        modules = {m.name: m.render() for m in parts}
        modules[top.name] = top.render()
        return RtlBundle(design=design, top=top.name, modules=modules)


class IntMacroTemplate(ArchitectureTemplate):
    """Template for the multiplier-based integer architecture."""

    name = INT_ARCH

    def generate(self, design: DesignPoint) -> RtlBundle:
        p = design.precision
        if p.is_float:
            raise ValueError(f"{design.describe()} is not an integer design")
        bx = bw = p.bits
        parts = [
            generate_sram_cell(),
            generate_compute_unit(design.l, design.k),
            generate_adder_tree(design.h, design.k),
            generate_shift_accumulator(bx, design.k, design.h),
            generate_result_fusion(bw, bx, design.h),
            generate_input_buffer(design.h, bx, design.k),
            generate_column(design.h, design.l, design.k, bx),
        ]
        top = generate_int_macro(design.n, design.h, design.l, design.k, bx, bw)
        return self._collect(design, top, parts)


class FpMacroTemplate(ArchitectureTemplate):
    """Template for the pre-aligned floating-point architecture."""

    name = FP_ARCH

    def generate(self, design: DesignPoint) -> RtlBundle:
        p = design.precision
        if not p.is_float:
            raise ValueError(f"{design.describe()} is not a floating-point design")
        be, bm = p.exponent_bits, p.mantissa_bits
        bx = bw = bm
        br = bw + bx + clog2(design.h)
        parts = [
            generate_sram_cell(),
            generate_compute_unit(design.l, design.k),
            generate_adder_tree(design.h, design.k),
            generate_shift_accumulator(bx, design.k, design.h),
            generate_result_fusion(bw, bx, design.h),
            generate_input_buffer(design.h, bx, design.k),
            generate_column(design.h, design.l, design.k, bx),
            generate_prealign(design.h, be, bm),
            generate_int2fp(br, be),
        ]
        top = generate_fp_macro(design.n, design.h, design.l, design.k, be, bm)
        return self._collect(design, top, parts)


_TEMPLATES: dict[str, ArchitectureTemplate] = {}


def register_template(template: ArchitectureTemplate) -> None:
    """Register an architecture template (overrides an existing name)."""
    if not template.name:
        raise ValueError("template must define a non-empty name")
    _TEMPLATES[template.name] = template


def available_templates() -> list[str]:
    """Names of the registered architecture templates."""
    return sorted(_TEMPLATES)


register_template(IntMacroTemplate())
register_template(FpMacroTemplate())


def generate_rtl(design: DesignPoint) -> RtlBundle:
    """Generate the Verilog bundle for a design point.

    Raises:
        KeyError: if no template is registered for the design's
            architecture.
    """
    try:
        template = _TEMPLATES[design.arch]
    except KeyError:
        raise KeyError(
            f"no template for architecture {design.arch!r}; "
            f"registered: {available_templates()}"
        ) from None
    return template.generate(design)


def write_bundle(bundle: RtlBundle, out_dir: str | Path) -> list[Path]:
    """Write one ``.v`` file per module plus a filelist; returns paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, source in bundle.modules.items():
        path = out / f"{name}.v"
        path.write_text(source)
        paths.append(path)
    filelist = out / f"{bundle.top}.f"
    filelist.write_text("\n".join(f"{name}.v" for name in bundle.modules) + "\n")
    paths.append(filelist)
    return paths
