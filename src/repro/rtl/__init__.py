"""Template-based RTL generation for SEGA-DCIM."""

from repro.rtl.generator import (
    ArchitectureTemplate,
    FpMacroTemplate,
    IntMacroTemplate,
    RtlBundle,
    available_templates,
    generate_rtl,
    register_template,
    write_bundle,
)
from repro.rtl.lint import LintReport, lint_bundle, lint_source
from repro.rtl.testbench import generate_int_testbench
from repro.rtl.verilog import Instance, Port, VerilogModule, render_modules

__all__ = [
    "LintReport",
    "lint_bundle",
    "lint_source",
    "generate_int_testbench",
    "VerilogModule",
    "Port",
    "Instance",
    "render_modules",
    "RtlBundle",
    "ArchitectureTemplate",
    "IntMacroTemplate",
    "FpMacroTemplate",
    "register_template",
    "available_templates",
    "generate_rtl",
    "write_bundle",
]
