"""Full-macro cost model for the multiplier-based integer DCIM (Table V).

The array stores ``Wstore = N * H * L / Bw`` weights in ``N * H * L``
SRAM cells.  Each of the ``N`` columns holds ``H`` compute units; every
compute unit serves ``L`` weight bits through an L:1 selection gate and
multiplies the selected bit with the ``k``-bit input slice using ``k``
NOR gates (Fig. 5).  Per column, an adder tree sums the ``H`` products
and a shift accumulator folds the ``ceil(Bx/k)`` bit-serial cycles.
Groups of ``Bw`` columns share a result fusion unit that weights each
column by its bit position.
"""

from __future__ import annotations

import math

from repro.model.components import (
    adder_tree,
    input_buffer,
    result_fusion,
    shift_accumulator,
)
from repro.model.cost import Cost
from repro.model.logic import multiplier_1xn, mux
from repro.model.macro import MacroCost
from repro.tech.cells import CellLibrary

__all__ = ["int_macro_cost", "validate_int_params", "int_weights_stored"]


def int_weights_stored(n: int, h: int, l: int, bw: int) -> int:
    """Number of ``Bw``-bit weights the array stores: ``N*H*L / Bw``."""
    return (n * h * l) // bw


def validate_int_params(n: int, h: int, l: int, k: int, bx: int, bw: int) -> None:
    """Check the structural constraints of the integer architecture.

    Raises:
        ValueError: on any violated constraint, with the reason.
    """
    if min(n, h, l, k, bx, bw) < 1:
        raise ValueError("all integer-macro parameters must be >= 1")
    if k > bx:
        # Eq. (2) prints "k - Bx >= 0" but the prose requires the
        # single-round input slice to fit in the input: 1 <= k <= Bx.
        raise ValueError(f"k={k} exceeds the input width Bx={bx}")
    if bx % k:
        raise ValueError(f"k={k} must divide the input width Bx={bx}")
    if n % bw:
        raise ValueError(
            f"N={n} must be a multiple of Bw={bw} (columns fuse in Bw-groups)"
        )
    if (n * h * l) % bw:
        raise ValueError("N*H*L must be a multiple of Bw")


def int_macro_cost(
    lib: CellLibrary,
    *,
    n: int,
    h: int,
    l: int,
    k: int,
    bx: int,
    bw: int,
    components: tuple[Cost, Cost, Cost, Cost, Cost, Cost] | None = None,
) -> MacroCost:
    """Cost of a multiplier-based integer DCIM macro.

    Args:
        lib: normalised standard-cell library.
        n: number of columns (each storing one weight bit position).
        h: column height (compute units / adder-tree inputs per column).
        l: weights sharing one compute unit (storage density factor).
        k: input bits fed per cycle (``1 <= k <= bx``, ``k | bx``).
        bx: input operand width ``Bx``.
        bw: weight width ``Bw``.
        components: optional precomputed ``(select, mult, tree, accu,
            fusion, buffer)`` component costs for exactly these
            parameters — the batch engine's memo passes them in so the
            macro assembly lives in one place.

    Returns:
        The macro's :class:`~repro.model.macro.MacroCost`.
    """
    validate_int_params(n, h, l, k, bx, bw)

    if components is None:
        components = (
            mux(lib, l),
            multiplier_1xn(lib, k),
            adder_tree(lib, h, k),
            shift_accumulator(lib, bx, h),
            result_fusion(lib, bw, bx, h),
            input_buffer(lib, h, bx),
        )
    select, mult, tree, accu, fusion, buffer = components
    sram = lib.sram

    fusion_units = n // bw
    breakdown: dict[str, Cost] = {
        "sram": Cost(n * h * l * sram.area, 0.0, 0.0),
        "weight_select": Cost(n * h * select.area, select.delay, n * h * select.energy),
        "multiply": Cost(n * h * mult.area, mult.delay, n * h * mult.energy),
        "adder_tree": Cost(n * tree.area, tree.delay, n * tree.energy),
        "accumulator": Cost(n * accu.area, accu.delay, n * accu.energy),
        "fusion": Cost(
            fusion_units * fusion.area, fusion.delay, fusion_units * fusion.energy
        ),
        "input_buffer": buffer,
    }

    cycles = math.ceil(bx / k)
    # Per-cycle consumers: selection, multiply, adder trees, accumulators.
    per_cycle_energy = (
        breakdown["weight_select"].energy
        + breakdown["multiply"].energy
        + breakdown["adder_tree"].energy
        + breakdown["accumulator"].energy
    )
    # Once-per-pass consumers: input-buffer load and the final fusion.
    per_pass_energy = breakdown["input_buffer"].energy + breakdown["fusion"].energy
    energy_per_pass = per_cycle_energy * cycles + per_pass_energy

    stage_delays = {
        # Stage 1: weight selection -> NOR multiply -> adder tree.
        "array": select.delay + mult.delay + tree.delay,
        # Stage 2: the shift accumulator's shifter + adder loop.
        "accumulate": accu.delay,
        # Stage 3: the result fusion combine.
        "fusion": fusion.delay,
    }

    # Each Bw-column group produces one full-precision output of H MACs
    # per pass; one MAC counts as 2 operations (multiply + add).
    ops_per_pass = 2.0 * h * (n / bw)

    return MacroCost(
        arch="int-mul",
        params={"n": n, "h": h, "l": l, "k": k, "bx": bx, "bw": bw},
        area=sum(c.area for c in breakdown.values()),
        stage_delays=stage_delays,
        energy_per_pass=energy_per_pass,
        cycles_per_pass=cycles,
        ops_per_pass=ops_per_pass,
        sram_bits=n * h * l,
        breakdown=breakdown,
    )
