"""Monte-Carlo process-variation analysis.

Foundry sign-off characterises a design across sampled process
variation; the estimation flow mirrors that with lognormal perturbation
of the three gate constants (area is layout-fixed; delay and energy
vary per die) and reports distribution statistics of the derived
metrics — the robustness evidence the paper's "robustness and benefits"
claim implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.model.metrics import evaluate_macro
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.spec import DesignPoint

__all__ = ["VariationResult", "monte_carlo"]


@dataclass(frozen=True)
class VariationResult:
    """Distribution of macro metrics under process variation.

    Attributes:
        samples: number of Monte-Carlo dies.
        delay_ns: per-die clock periods.
        tops_per_watt: per-die energy efficiencies.
        tops: per-die peak throughputs.
    """

    samples: int
    delay_ns: np.ndarray
    tops_per_watt: np.ndarray
    tops: np.ndarray

    def percentile(self, metric: str, q: float) -> float:
        """Percentile of one metric array (``q`` in [0, 100])."""
        return float(np.percentile(getattr(self, metric), q))

    def yield_at(self, max_delay_ns: float) -> float:
        """Fraction of dies meeting a clock-period budget."""
        return float((self.delay_ns <= max_delay_ns).mean())

    def summary(self) -> dict[str, float]:
        """Median and 3-sigma-ish spread of each metric."""
        return {
            "delay_ns_p50": self.percentile("delay_ns", 50),
            "delay_ns_p99": self.percentile("delay_ns", 99),
            "tops_per_watt_p50": self.percentile("tops_per_watt", 50),
            "tops_per_watt_p1": self.percentile("tops_per_watt", 1),
            "tops_p50": self.percentile("tops", 50),
        }


def monte_carlo(
    design: DesignPoint,
    tech: Technology,
    samples: int = 500,
    sigma_delay: float = 0.05,
    sigma_energy: float = 0.05,
    seed: int = 0,
    library: CellLibrary | None = None,
) -> VariationResult:
    """Sample die-to-die variation of one design's metrics.

    Delay and energy gate constants are perturbed lognormally
    (multiplicative variation, median 1.0) per sampled die.

    Args:
        design: the design point under analysis.
        tech: nominal technology.
        samples: Monte-Carlo die count.
        sigma_delay / sigma_energy: lognormal sigma of the delay/energy
            gate constants.
        seed: RNG seed.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    cost = design.macro_cost(library)
    rng = np.random.default_rng(seed)
    delay_scale = rng.lognormal(mean=0.0, sigma=sigma_delay, size=samples)
    energy_scale = rng.lognormal(mean=0.0, sigma=sigma_energy, size=samples)
    nominal = evaluate_macro(cost, tech)
    # Metrics scale directly with the gate constants: delay linearly,
    # energy linearly, throughput inversely with delay.
    delay = nominal.delay_ns * delay_scale
    tops = nominal.tops / delay_scale
    tops_per_watt = nominal.tops_per_watt / energy_scale
    return VariationResult(
        samples=samples,
        delay_ns=delay,
        tops_per_watt=tops_per_watt,
        tops=tops,
    )
