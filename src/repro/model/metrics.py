"""Physical metrics: bind a normalised macro cost to a technology node.

Produces the quantities the paper reports: area (mm^2), clock period
(ns), power (W), per-pass energy (nJ), TOPS, TOPS/W and TOPS/mm^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.macro import MacroCost
from repro.tech.technology import Technology

__all__ = ["MacroMetrics", "evaluate_macro"]


@dataclass(frozen=True)
class MacroMetrics:
    """Absolute performance numbers of a macro on a technology node.

    Attributes:
        area_mm2: standard-cell area from the estimation model.
        layout_area_mm2: post-P&R area (cell area / utilisation) — the
            quantity a measured macro reports, used for TOPS/mm^2.
        delay_ns: clock period (slowest pipeline stage).
        frequency_ghz: ``1 / delay_ns``.
        cycles_per_pass: cycles per matrix-vector pass.
        energy_per_pass_nj: switching energy of one pass.
        power_w: average dynamic power at full duty.
        tops: peak throughput in tera-operations per second.
        tops_per_watt: energy efficiency.
        tops_per_mm2: area efficiency (on the layout area).
    """

    area_mm2: float
    layout_area_mm2: float
    delay_ns: float
    frequency_ghz: float
    cycles_per_pass: int
    energy_per_pass_nj: float
    power_w: float
    tops: float
    tops_per_watt: float
    tops_per_mm2: float


def evaluate_macro(cost: MacroCost, tech: Technology) -> MacroMetrics:
    """Convert a normalised :class:`MacroCost` into :class:`MacroMetrics`.

    Energy uses the technology's activity factor (the paper quotes
    efficiency at 10 % sparsity); delay and energy include the first-
    order supply-voltage scaling of :class:`Technology`.
    """
    area_mm2 = tech.area_mm2(cost.area)
    layout_area_mm2 = area_mm2 / tech.utilization
    delay_ns = tech.delay_ns(cost.delay)
    frequency_ghz = 1.0 / delay_ns
    energy_pass_j = tech.energy_fj(cost.energy_per_pass) * 1e-15
    pass_time_s = cost.cycles_per_pass * delay_ns * 1e-9
    power_w = energy_pass_j / pass_time_s
    ops_per_s = cost.ops_per_pass / pass_time_s
    tops = ops_per_s * 1e-12
    tops_per_watt = cost.ops_per_pass / energy_pass_j * 1e-12
    return MacroMetrics(
        area_mm2=area_mm2,
        layout_area_mm2=layout_area_mm2,
        delay_ns=delay_ns,
        frequency_ghz=frequency_ghz,
        cycles_per_pass=cost.cycles_per_pass,
        energy_per_pass_nj=energy_pass_j * 1e9,
        power_w=power_w,
        tops=tops,
        tops_per_watt=tops_per_watt,
        tops_per_mm2=tops / layout_area_mm2,
    )
