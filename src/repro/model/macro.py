"""Macro-level cost record shared by the INT and FP estimation models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.cost import Cost

__all__ = ["MacroCost"]


@dataclass(frozen=True)
class MacroCost:
    """Normalised cost summary of one complete DCIM macro.

    All quantities are NOR-gate units (see :mod:`repro.model.cost`).  A
    *pass* is one full matrix-vector multiplication round: the input
    buffer streams the ``Bx``-bit (or ``BM``-bit) inputs ``k`` bits per
    cycle, so a pass takes ``cycles_per_pass = ceil(Bx / k)`` cycles.

    Attributes:
        arch: architecture template name (``"int-mul"`` / ``"fp-prealign"``).
        params: the design parameters that produced this cost.
        area: total normalised cell area.
        stage_delays: critical-path delay of each pipeline stage; the
            macro delay (clock period) is their maximum, because the
            shift accumulator's registers pipeline the stages.
        energy_per_pass: normalised switching energy of one full pass.
        cycles_per_pass: cycles per pass (``ceil(Bx / k)``).
        ops_per_pass: MAC operations per pass, counted as 2 ops
            (multiply + add) per weight-input product at full precision.
        sram_bits: SRAM bit-cells in the array (``N * H * L``).
        breakdown: per-component normalised costs for reporting.
    """

    arch: str
    params: dict[str, int]
    area: float
    stage_delays: dict[str, float]
    energy_per_pass: float
    cycles_per_pass: int
    ops_per_pass: float
    sram_bits: int
    breakdown: dict[str, Cost] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stage_delays:
            raise ValueError("a macro needs at least one pipeline stage")
        if self.cycles_per_pass < 1:
            raise ValueError("cycles_per_pass must be >= 1")

    @property
    def delay(self) -> float:
        """Clock period in NOR delays: the slowest pipeline stage."""
        return max(self.stage_delays.values())

    @property
    def critical_stage(self) -> str:
        """Name of the pipeline stage that sets the clock period."""
        return max(self.stage_delays, key=self.stage_delays.__getitem__)

    @property
    def energy_per_cycle(self) -> float:
        """Average normalised energy per cycle."""
        return self.energy_per_pass / self.cycles_per_pass

    @property
    def ops_per_cycle(self) -> float:
        """Average MAC operations per cycle."""
        return self.ops_per_pass / self.cycles_per_pass

    @property
    def throughput(self) -> float:
        """Normalised throughput: operations per NOR-delay unit.

        Multiply by ``1 / Technology.gate_delay`` to obtain ops/s.
        """
        return self.ops_per_pass / (self.cycles_per_pass * self.delay)

    def area_fraction(self, component: str) -> float:
        """Fraction of total area taken by one breakdown component.

        Components absent from :attr:`breakdown` (e.g. FP-only blocks
        queried on an integer macro) take no area, so they report 0.0
        rather than raising.
        """
        if self.area == 0:
            return 0.0
        part = self.breakdown.get(component)
        if part is None:
            return 0.0
        return part.area / self.area
