"""Digital logic-module cost models (paper Table II).

Each function returns a normalised :class:`~repro.model.cost.Cost` for one
instance of the module, built from the standard-cell costs of a
:class:`~repro.tech.cells.CellLibrary`:

* 1-bit x N-bit multiplier — N NOR gates (Fig. 5 compute unit style).
* N-bit adder — carry-ripple: (N-1) full adders plus one half adder.
* N:1 multiplexer — (N-1) MUX2 cells, log2(N) on the select path.
* N-bit barrel shifter — N selectors of N:1 each (the paper's literal
  ``A_shift(N) = N * A_sel(N)`` / ``D_shift(N) = log2(N) * D_sel(N)``).
* N-bit comparator — simplified to an N-bit adder (it only selects the
  larger of two values in the exponent-max tree).
"""

from __future__ import annotations

import math

from repro.model.cost import Cost
from repro.tech.cells import CellLibrary

__all__ = [
    "multiplier_1xn",
    "adder",
    "adder_cla",
    "mux",
    "barrel_shifter",
    "comparator",
    "register_bank",
    "clog2",
]


def clog2(n: int | float) -> int:
    """Ceiling of log2, with ``clog2(1) == 0``.

    Structural depths (mux trees, adder trees, max trees) use this; the
    paper assumes power-of-two parameters, for which it is exact.
    """
    if n < 1:
        raise ValueError(f"clog2 requires n >= 1, got {n}")
    return math.ceil(math.log2(n))


def _check_width(n: int) -> None:
    if n < 1:
        raise ValueError(f"bit width must be >= 1, got {n}")


def multiplier_1xn(lib: CellLibrary, n: int) -> Cost:
    """1-bit x N-bit multiplier: N NOR gates in parallel (Table II row 1).

    The multiplication ``IN x W = INB NOR WB`` uses one NOR per input
    bit; all N gates switch in parallel, so delay is a single NOR.
    """
    _check_width(n)
    nor = lib.nor
    return Cost(n * nor.area, nor.delay, n * nor.energy)


def adder(lib: CellLibrary, n: int) -> Cost:
    """N-bit carry-ripple adder: (N-1) FA + 1 HA (Table II row 2).

    The ripple carry makes delay linear in the width.  ``n == 1``
    degenerates to a single half adder.
    """
    _check_width(n)
    fa, ha = lib.full_adder, lib.half_adder
    return Cost(
        (n - 1) * fa.area + ha.area,
        (n - 1) * fa.delay + ha.delay,
        (n - 1) * fa.energy + ha.energy,
    )


def adder_cla(lib: CellLibrary, n: int) -> Cost:
    """N-bit carry-lookahead adder (extension, not in Table II).

    The paper fixes the carry-ripple structure; this alternative lets
    the ablation benches quantify that choice.  First-order model:
    4-bit lookahead groups in a tree — area/energy ~1.6x the ripple
    adder (the lookahead fabric), delay logarithmic: one FA stage per
    ``log2(ceil(n/4)) + 1`` group levels plus the final sum XOR.
    """
    _check_width(n)
    ripple = adder(lib, n)
    if n <= 4:
        return ripple
    groups = math.ceil(n / 4)
    levels = clog2(groups) + 1
    fa = lib.full_adder
    return Cost(
        1.6 * ripple.area,
        levels * fa.delay + lib.half_adder.delay,
        1.6 * ripple.energy,
    )


def mux(lib: CellLibrary, n: int) -> Cost:
    """N:1 multiplexer: (N-1) MUX2 in a tree (Table II row 3).

    Delay is the tree depth ``log2(N)`` MUX2 delays.  ``n == 1`` is a
    wire (zero cost).
    """
    _check_width(n)
    if n == 1:
        return Cost(0.0, 0.0, 0.0)
    m = lib.mux2
    return Cost((n - 1) * m.area, clog2(n) * m.delay, (n - 1) * m.energy)


def barrel_shifter(lib: CellLibrary, n: int) -> Cost:
    """N-bit barrel shifter (Table II row 4).

    The paper's literal formulas are kept: area and energy are ``N``
    copies of an N:1 selector (one per output bit), and delay is
    ``log2(N)`` selector delays.  ``n == 1`` is a wire.
    """
    _check_width(n)
    if n == 1:
        return Cost(0.0, 0.0, 0.0)
    sel = mux(lib, n)
    return Cost(n * sel.area, clog2(n) * sel.delay, n * sel.energy)


def comparator(lib: CellLibrary, n: int) -> Cost:
    """N-bit comparator, simplified to an N-bit adder (Table II row 5)."""
    return adder(lib, n)


def register_bank(lib: CellLibrary, n: int) -> Cost:
    """N DFFs (not in Table II, used by buffers and accumulators)."""
    _check_width(n)
    dff = lib.dff
    return Cost(n * dff.area, dff.delay, n * dff.energy)
