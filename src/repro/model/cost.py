"""Normalised hardware cost triples (area, delay, energy).

Every estimation-model quantity in SEGA-DCIM is expressed in NOR-gate
units (Table III of the paper): one unit of area is the area of a NOR2
cell, one unit of delay is a NOR2 propagation delay, one unit of energy
is the switching energy of a NOR2.  A :class:`repro.tech.technology.
Technology` converts these normalised units into um^2 / ns / fJ.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cost", "parallel", "series", "ZERO_COST"]


@dataclass(frozen=True)
class Cost:
    """An (area, delay, energy) triple in NOR-normalised units.

    ``delay`` is a critical-path delay, so composition rules differ per
    dimension: replicating a block multiplies area and energy but keeps
    delay; cascading blocks adds all three.  Use :func:`parallel` and
    :func:`series` rather than ad-hoc arithmetic.
    """

    area: float
    delay: float
    energy: float

    def __post_init__(self) -> None:
        if self.area < 0 or self.delay < 0 or self.energy < 0:
            raise ValueError(f"cost components must be non-negative: {self}")

    def scaled(self, area: float = 1.0, delay: float = 1.0, energy: float = 1.0) -> "Cost":
        """Return a copy with per-dimension multiplicative factors."""
        return Cost(self.area * area, self.delay * delay, self.energy * energy)


#: The cost of nothing (useful as a reduction identity).
ZERO_COST = Cost(0.0, 0.0, 0.0)


def parallel(cost: Cost, n: float) -> Cost:
    """Replicate a block ``n`` times side by side.

    Area and energy scale by ``n``; the critical path is unchanged.
    """
    if n < 0:
        raise ValueError(f"replication count must be non-negative, got {n}")
    return Cost(cost.area * n, cost.delay, cost.energy * n)


def series(*costs: Cost) -> Cost:
    """Cascade blocks on one path: all three dimensions accumulate."""
    area = sum(c.area for c in costs)
    delay = sum(c.delay for c in costs)
    energy = sum(c.energy for c in costs)
    return Cost(area, delay, energy)
