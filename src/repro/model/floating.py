"""Full-macro cost model for the pre-aligned floating-point DCIM (Table VI).

The FP macro wraps the integer mantissa array with:

* an **FP pre-alignment** front end that finds the maximum input
  exponent ``XEmax`` with a comparator tree, subtracts each exponent
  from it, and right-shifts each mantissa by the offset, and
* an **INT-to-FP converter** back end that normalises the fused
  ``Br = Bw + BM + log2(H)``-bit integer result and re-packs sign,
  exponent and mantissa.

The weight mantissas are aligned offline and pre-stored, so the array
stores ``Wstore = N * H * L / BM`` weights; the mantissa MAC inside the
array is exactly the integer model with ``Bx = Bw = BM``.
"""

from __future__ import annotations

import math

from repro.model.components import (
    adder_tree,
    input_buffer,
    int_to_fp_converter,
    prealignment,
    result_fusion,
    shift_accumulator,
)
from repro.model.cost import Cost
from repro.model.logic import multiplier_1xn, mux, register_bank
from repro.model.macro import MacroCost
from repro.model.integer import validate_int_params
from repro.tech.cells import CellLibrary

__all__ = ["fp_macro_cost", "validate_fp_params", "fp_weights_stored"]


def fp_weights_stored(n: int, h: int, l: int, bm: int) -> int:
    """Number of FP weights stored: ``N*H*L / BM`` (Eq. 3 constraint)."""
    return (n * h * l) // bm


def validate_fp_params(n: int, h: int, l: int, k: int, be: int, bm: int) -> None:
    """Check the structural constraints of the FP architecture.

    The mantissa datapath reuses the integer constraints with
    ``Bx = Bw = BM``; additionally the exponent width must be positive.
    """
    if be < 1:
        raise ValueError(f"exponent width BE must be >= 1, got {be}")
    validate_int_params(n, h, l, k, bx=bm, bw=bm)


def fp_macro_cost(
    lib: CellLibrary,
    *,
    n: int,
    h: int,
    l: int,
    k: int,
    be: int,
    bm: int,
    components: tuple[Cost, ...] | None = None,
) -> MacroCost:
    """Cost of a pre-aligned floating-point DCIM macro.

    Args:
        lib: normalised standard-cell library.
        n: number of columns.
        h: column height.
        l: weights sharing one compute unit.
        k: mantissa bits fed per cycle (``1 <= k <= bm``, ``k | bm``).
        be: exponent width ``BE``.
        bm: mantissa datapath width ``BM`` (with hidden bit).
        components: optional precomputed ``(select, mult, tree, accu,
            fusion, buffer, align, convert, exp_regs)`` component costs
            for exactly these parameters — the batch engine's memo
            passes them in so the macro assembly lives in one place.

    Returns:
        The macro's :class:`~repro.model.macro.MacroCost`.
    """
    validate_fp_params(n, h, l, k, be, bm)

    if components is None:
        components = (
            mux(lib, l),
            multiplier_1xn(lib, k),
            adder_tree(lib, h, k),
            shift_accumulator(lib, bm, h),
            result_fusion(lib, bm, bm, h),
            input_buffer(lib, h, bm),
            prealignment(lib, h, be, bm),
            int_to_fp_converter(lib, bm, bm, h, be),
            register_bank(lib, h * be),
        )
    select, mult, tree, accu, fusion, buffer, align, convert, exp_regs = components
    sram = lib.sram

    fusion_units = n // bm
    breakdown: dict[str, Cost] = {
        "sram": Cost(n * h * l * sram.area, 0.0, 0.0),
        "weight_select": Cost(n * h * select.area, select.delay, n * h * select.energy),
        "multiply": Cost(n * h * mult.area, mult.delay, n * h * mult.energy),
        "adder_tree": Cost(n * tree.area, tree.delay, n * tree.energy),
        "accumulator": Cost(n * accu.area, accu.delay, n * accu.energy),
        "fusion": Cost(
            fusion_units * fusion.area, fusion.delay, fusion_units * fusion.energy
        ),
        "input_buffer": buffer,
        "prealign": align,
        "exponent_regs": exp_regs,
        "int_to_fp": Cost(
            fusion_units * convert.area, convert.delay, fusion_units * convert.energy
        ),
    }

    cycles = math.ceil(bm / k)
    per_cycle_energy = (
        breakdown["weight_select"].energy
        + breakdown["multiply"].energy
        + breakdown["adder_tree"].energy
        + breakdown["accumulator"].energy
    )
    # Alignment, buffering, fusion and conversion happen once per pass.
    per_pass_energy = (
        breakdown["input_buffer"].energy
        + breakdown["prealign"].energy
        + breakdown["exponent_regs"].energy
        + breakdown["fusion"].energy
        + breakdown["int_to_fp"].energy
    )
    energy_per_pass = per_cycle_energy * cycles + per_pass_energy

    stage_delays = {
        # Stage 0: exponent-max tree, subtract and mantissa shift.
        "prealign": align.delay,
        # Stage 1: weight selection -> NOR multiply -> adder tree.
        "array": select.delay + mult.delay + tree.delay,
        # Stage 2: the shift accumulator's shifter + adder loop.
        "accumulate": accu.delay,
        # Stage 3: result fusion combine.
        "fusion": fusion.delay,
        # Stage 4: normalise and re-pack to FP.
        "convert": convert.delay,
    }

    ops_per_pass = 2.0 * h * (n / bm)

    return MacroCost(
        arch="fp-prealign",
        params={"n": n, "h": h, "l": l, "k": k, "be": be, "bm": bm},
        area=sum(c.area for c in breakdown.values()),
        stage_delays=stage_delays,
        energy_per_pass=energy_per_pass,
        cycles_per_pass=cycles,
        ops_per_pass=ops_per_pass,
        sram_bits=n * h * l,
        breakdown=breakdown,
    )
