"""DCIM component cost models (paper Table IV, reconstructed).

Table IV of the paper renders as an image in the PDF, so the formulas
here are reconstructed from the prose of Sections III-A / III-B-1 and
standard digital design; DESIGN.md documents each choice.  All costs are
normalised NOR-gate units for ONE instance of the component.
"""

from __future__ import annotations

from repro.model.cost import Cost
from repro.model.logic import adder, barrel_shifter, clog2, comparator, mux, register_bank
from repro.tech.cells import CellLibrary

__all__ = [
    "adder_tree",
    "shift_accumulator",
    "result_fusion",
    "prealignment",
    "int_to_fp_converter",
    "input_buffer",
    "accumulator_width",
    "fusion_width",
    "converter_width",
]


def accumulator_width(bx: int, h: int) -> int:
    """Shift-accumulator operand width ``Ba = Bx + log2(H)`` (prose III-B-1)."""
    return bx + clog2(h)


def fusion_width(bw: int, bx: int, h: int) -> int:
    """Result-fusion output width ``Bw + Bx + log2(H)``."""
    return bw + bx + clog2(h)


def converter_width(bw: int, bm: int, h: int) -> int:
    """INT-to-FP converter input width ``Br = Bw + BM + log2(H)`` (prose)."""
    return bw + bm + clog2(h)


def adder_tree(lib: CellLibrary, h: int, k: int, adder_fn=adder) -> Cost:
    """Adder tree summing ``h`` operands of ``k`` bits.

    Reconstruction: a balanced binary tree.  Level *i* (1-indexed from
    the leaves) pairs up the surviving operands with ripple adders whose
    width grows by one bit per level (``k + i - 1`` in, ``k + i`` out).
    Area/energy accumulate over all adders; delay accumulates one adder
    per level along the critical path.  Non-power-of-two ``h`` is handled
    by carrying the odd operand up a level.

    Args:
        adder_fn: per-level adder cost model; defaults to the paper's
            carry-ripple :func:`~repro.model.logic.adder`.  The ablation
            benches pass :func:`~repro.model.logic.adder_cla` here.
    """
    if h < 1:
        raise ValueError(f"adder tree needs h >= 1, got {h}")
    if k < 1:
        raise ValueError(f"adder tree needs k >= 1, got {k}")
    area = energy = delay = 0.0
    operands = h
    width = k
    while operands > 1:
        pairs, odd = divmod(operands, 2)
        level_adder = adder_fn(lib, width)
        area += pairs * level_adder.area
        energy += pairs * level_adder.energy
        delay += level_adder.delay
        operands = pairs + odd
        width += 1
    return Cost(area, delay, energy)


def shift_accumulator(lib: CellLibrary, bx: int, h: int) -> Cost:
    """Shift accumulator collecting bit-serial partial sums.

    Per the prose: ``(Bx + log2 H)`` registers, one ``(Bx + log2 H)``-bit
    barrel shifter and one ``(Bx + log2 H)``-bit adder.  The combinational
    path each cycle is shifter + adder; the registers pipeline the loop.
    """
    ba = accumulator_width(bx, h)
    regs = register_bank(lib, ba)
    shift = barrel_shifter(lib, ba)
    add = adder(lib, ba)
    return Cost(
        regs.area + shift.area + add.area,
        shift.delay + add.delay,
        regs.energy + shift.energy + add.energy,
    )


def result_fusion(lib: CellLibrary, bw: int, bx: int, h: int) -> Cost:
    """Result fusion unit: weighted sum of ``bw`` column results.

    Each of the ``bw`` columns delivers a ``(Bx + log2 H)``-bit partial
    result that must be shifted by its bit position and summed.  The
    shifts are hard-wired (they are constant per column), so the cost is
    ``bw - 1`` adders of the full fused width arranged as a balanced tree
    (``log2(bw)`` adders on the critical path).  ``bw == 1`` is a wire.
    """
    if bw < 1:
        raise ValueError(f"result fusion needs bw >= 1, got {bw}")
    if bw == 1:
        return Cost(0.0, 0.0, 0.0)
    width = fusion_width(bw, bx, h)
    add = adder(lib, width)
    return Cost(
        (bw - 1) * add.area,
        clog2(bw) * add.delay,
        (bw - 1) * add.energy,
    )


def prealignment(lib: CellLibrary, h: int, be: int, bm: int) -> Cost:
    """FP pre-alignment for ``h`` inputs (exponent ``be``, mantissa ``bm``).

    Two parts per the prose: (1) a comparison tree finding the maximum
    exponent ``XEmax`` — ``h - 1`` BE-bit comparators, each followed by a
    BE-bit bank of 2:1 muxes forwarding the winner; (2) per input, a
    BE-bit subtractor computing ``XEmax - XE`` and a BM-bit barrel
    shifter aligning the mantissa.  The critical path walks the
    ``log2(h)`` tree levels then one subtract and one shift.
    """
    if h < 1:
        raise ValueError(f"prealignment needs h >= 1, got {h}")
    comp = comparator(lib, be)
    sel = mux(lib, 2)  # one MUX2 per forwarded exponent bit
    sub = adder(lib, be)
    shift = barrel_shifter(lib, bm)
    tree_nodes = h - 1
    area = tree_nodes * (comp.area + be * sel.area) + h * (sub.area + shift.area)
    energy = tree_nodes * (comp.energy + be * sel.energy) + h * (sub.energy + shift.energy)
    delay = clog2(h) * (comp.delay + sel.delay) + sub.delay + shift.delay
    return Cost(area, delay, energy)


def int_to_fp_converter(lib: CellLibrary, bw: int, bm: int, h: int, be: int) -> Cost:
    """INT-to-FP converter normalising the ``Br``-bit fused result.

    ``Br = Bw + BM + log2 H``.  Reconstruction: a tree-structured
    leading-one detector over the ``Br`` result bits (one OR gate per
    bit, ``log2(Br)`` levels deep), a ``Br``-bit normalising barrel
    shifter, and a BE-bit exponent adder; sign/packing is wiring.
    """
    br = converter_width(bw, bm, h)
    or_gate = lib.or_gate
    shift = barrel_shifter(lib, br)
    exp_add = adder(lib, be)
    return Cost(
        br * or_gate.area + shift.area + exp_add.area,
        clog2(br) * or_gate.delay + shift.delay + exp_add.delay,
        br * or_gate.energy + shift.energy + exp_add.energy,
    )


def input_buffer(lib: CellLibrary, h: int, bx: int) -> Cost:
    """Input buffer holding ``h`` operands of ``bx`` bits in DFFs.

    The buffer feeds ``h * k`` bits per cycle to the array; its storage
    is one register per buffered input bit.
    """
    if h < 1 or bx < 1:
        raise ValueError("input buffer needs h >= 1 and bx >= 1")
    return register_bank(lib, h * bx)
