"""Estimation models for SEGA-DCIM (paper Tables II-VI)."""

from repro.model.cost import Cost, parallel, series, ZERO_COST
from repro.model.logic import (
    adder,
    adder_cla,
    barrel_shifter,
    clog2,
    comparator,
    multiplier_1xn,
    mux,
    register_bank,
)
from repro.model.components import (
    accumulator_width,
    adder_tree,
    converter_width,
    fusion_width,
    input_buffer,
    int_to_fp_converter,
    prealignment,
    result_fusion,
    shift_accumulator,
)
from repro.model.macro import MacroCost
from repro.model.engine import (
    BatchCost,
    CostEngine,
    ENGINE_BACKENDS,
    HAS_NUMPY,
    resolve_backend,
)
from repro.model.integer import int_macro_cost, int_weights_stored, validate_int_params
from repro.model.floating import fp_macro_cost, fp_weights_stored, validate_fp_params
from repro.model.metrics import MacroMetrics, evaluate_macro
from repro.model.variation import VariationResult, monte_carlo

__all__ = [
    "BatchCost",
    "CostEngine",
    "ENGINE_BACKENDS",
    "HAS_NUMPY",
    "resolve_backend",
    "Cost",
    "adder_cla",
    "VariationResult",
    "monte_carlo",
    "parallel",
    "series",
    "ZERO_COST",
    "adder",
    "barrel_shifter",
    "clog2",
    "comparator",
    "multiplier_1xn",
    "mux",
    "register_bank",
    "accumulator_width",
    "adder_tree",
    "converter_width",
    "fusion_width",
    "input_buffer",
    "int_to_fp_converter",
    "prealignment",
    "result_fusion",
    "shift_accumulator",
    "MacroCost",
    "int_macro_cost",
    "int_weights_stored",
    "validate_int_params",
    "fp_macro_cost",
    "fp_weights_stored",
    "validate_fp_params",
    "MacroMetrics",
    "evaluate_macro",
]
