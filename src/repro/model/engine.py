"""Batch-first cost-evaluation engine.

Every layer of the reproduction — NSGA-II generations, the evaluation
service's executors, ``exhaustive_front``, the DSE baselines, and the
workload sweeps — ultimately needs objective vectors for *many* decoded
parameter sets at once.  The paper's estimation models (Tables V/VI) are
closed-form analytic expressions, so they are trivially array-evaluable:
this module computes area, stage delays, energy-per-pass, cycles- and
ops-per-pass for a whole batch in one call.

Two ideas make the batch path fast:

1. **Component memoisation.**  The per-genome parameters ``(N, H, L, k)``
   draw from tiny discrete sets (powers of two under the spec bounds,
   divisors of the input width), so the component models that contain
   loops — ``adder_tree``, ``mux``, ``barrel_shifter`` — are evaluated
   once per *unique* parameter value and shared across the batch.
2. **Vectorised assembly.**  The remaining per-genome arithmetic is a
   fixed sequence of elementwise operations, executed on numpy arrays
   when numpy is importable (the ``"numpy"`` backend) and as a plain
   Python loop otherwise (the ``"python"`` backend).

Both backends replicate the *exact* operation order of
:func:`repro.model.integer.int_macro_cost` and
:func:`repro.model.floating.fp_macro_cost`, so the results are
bit-identical to the scalar path: IEEE-754 double arithmetic is
deterministic, and elementwise numpy float64 operations round exactly
like CPython floats.  That guarantee is what keeps persisted
:class:`repro.service.cache.EvaluationCache` entries and per-seed
NSGA-II trajectories unchanged no matter which backend ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.model.components import (
    adder_tree,
    input_buffer,
    int_to_fp_converter,
    prealignment,
    result_fusion,
    shift_accumulator,
)
from repro.model.cost import Cost
from repro.model.floating import fp_macro_cost, validate_fp_params
from repro.model.integer import int_macro_cost, validate_int_params
from repro.model.logic import multiplier_1xn, mux, register_bank
from repro.model.macro import MacroCost
from repro.tech.cells import CellLibrary

try:  # numpy is optional: the python backend covers its absence.
    import numpy as _np
except ImportError:  # pragma: no cover - image bakes numpy in
    _np = None

__all__ = [
    "BatchCost",
    "CostEngine",
    "ENGINE_BACKENDS",
    "HAS_NUMPY",
    "resolve_backend",
]

#: True when the vectorised numpy backend can run in this interpreter.
HAS_NUMPY = _np is not None

#: Backend names accepted by :class:`CostEngine` and the CLI.
ENGINE_BACKENDS = ("auto", "numpy", "python")


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a requested backend name to the one that will run.

    ``"auto"`` picks numpy when importable and falls back to the pure
    Python loop otherwise; the explicit names force one path (useful for
    parity tests and for debugging numpy-less deployments).

    Raises:
        ValueError: on an unknown name, or when ``"numpy"`` is forced
            but numpy is not importable.
    """
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {backend!r}; choose from {ENGINE_BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise ValueError("engine backend 'numpy' requested but numpy is not importable")
    return backend


@dataclass(frozen=True)
class BatchCost:
    """Columnar cost summary of one evaluated batch.

    The per-genome quantities mirror :class:`repro.model.macro.MacroCost`
    (same normalised NOR-gate units, same definitions), stored as plain
    Python tuples so downstream consumers never see backend-specific
    scalar types.

    Attributes:
        arch: architecture template of the batch (``"mixed"`` when a
            point batch spans both templates).
        backend: which engine backend produced the numbers.
        area / delay / energy_per_pass / cycles_per_pass / ops_per_pass /
            sram_bits: per-genome columns, in input order.
    """

    arch: str
    backend: str
    area: tuple[float, ...]
    delay: tuple[float, ...]
    energy_per_pass: tuple[float, ...]
    cycles_per_pass: tuple[int, ...]
    ops_per_pass: tuple[float, ...]
    sram_bits: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.area)

    def objectives(self) -> list[tuple[float, float, float, float]]:
        """Minimised ``[A, D, E, -T]`` rows, in input order.

        The throughput negation uses the same scalar expression as
        :func:`repro.dse.problem.objectives_of` over
        :attr:`MacroCost.throughput`, keeping the rows bit-identical to
        the scalar path.
        """
        return [
            (a, d, e, -(o / (c * d)))
            for a, d, e, c, o in zip(
                self.area,
                self.delay,
                self.energy_per_pass,
                self.cycles_per_pass,
                self.ops_per_pass,
            )
        ]

    def throughput(self) -> tuple[float, ...]:
        """Normalised ops per NOR-delay for each genome."""
        return tuple(
            o / (c * d)
            for o, c, d in zip(self.ops_per_pass, self.cycles_per_pass, self.delay)
        )


def _empty_batch(arch: str, backend: str) -> BatchCost:
    return BatchCost(arch, backend, (), (), (), (), (), ())


def _batch_from_macro_costs(arch: str, costs: Sequence[MacroCost]) -> BatchCost:
    """Columnarise scalar macro costs (the pure-Python backend's output)."""
    return BatchCost(
        arch,
        "python",
        tuple(c.area for c in costs),
        tuple(c.delay for c in costs),
        tuple(c.energy_per_pass for c in costs),
        tuple(c.cycles_per_pass for c in costs),
        tuple(c.ops_per_pass for c in costs),
        tuple(c.sram_bits for c in costs),
    )


class CostEngine:
    """Batch evaluator for the INT and FP macro estimation models.

    One engine instance owns a component-cost memo keyed on the unique
    structural parameters, so repeated batches (e.g. one per NSGA-II
    generation) get cheaper as the design space is covered.  Engines are
    picklable, which lets :class:`repro.dse.problem.DcimProblem` carry
    one into process-pool workers.

    Args:
        library: normalised standard-cell library shared by all
            evaluations.
        backend: ``"auto"`` (default), ``"numpy"``, or ``"python"``.
    """

    def __init__(
        self, library: CellLibrary | None = None, backend: str = "auto"
    ) -> None:
        self.library = library or CellLibrary.default()
        self.requested_backend = backend
        self.backend = resolve_backend(backend)
        self._memo: dict[tuple, Cost] = {}

    # Component memoisation ------------------------------------------------
    def _cost(self, key: tuple, factory: Callable[[], Cost]) -> Cost:
        cost = self._memo.get(key)
        if cost is None:
            cost = factory()
            self._memo[key] = cost
        return cost

    def _int_components(
        self, l: int, k: int, h: int, bx: int, bw: int
    ) -> tuple[Cost, Cost, Cost, Cost, Cost, Cost]:
        lib = self.library
        return (
            self._cost(("mux", l), lambda: mux(lib, l)),
            self._cost(("mult", k), lambda: multiplier_1xn(lib, k)),
            self._cost(("tree", h, k), lambda: adder_tree(lib, h, k)),
            self._cost(("accu", bx, h), lambda: shift_accumulator(lib, bx, h)),
            self._cost(("fusion", bw, bx, h), lambda: result_fusion(lib, bw, bx, h)),
            self._cost(("buffer", h, bx), lambda: input_buffer(lib, h, bx)),
        )

    def _fp_components(
        self, l: int, k: int, h: int, be: int, bm: int
    ) -> tuple[Cost, ...]:
        lib = self.library
        return self._int_components(l, k, h, bm, bm) + (
            self._cost(("align", h, be, bm), lambda: prealignment(lib, h, be, bm)),
            self._cost(
                ("convert", bm, h, be), lambda: int_to_fp_converter(lib, bm, bm, h, be)
            ),
            self._cost(("regs", h * be), lambda: register_bank(lib, h * be)),
        )

    def _gather(
        self, keys: Sequence, make: Callable[..., Cost]
    ) -> tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]:
        """Per-genome (area, delay, energy) arrays from memoised costs.

        ``keys`` is one hashable component key per genome; each unique
        key is materialised once.
        """
        index: dict = {}
        costs: list[Cost] = []
        pos = _np.empty(len(keys), dtype=_np.intp)
        for i, key in enumerate(keys):
            j = index.get(key)
            if j is None:
                j = len(costs)
                index[key] = j
                costs.append(make(key))
            pos[i] = j
        area = _np.array([c.area for c in costs])[pos]
        delay = _np.array([c.delay for c in costs])[pos]
        energy = _np.array([c.energy for c in costs])[pos]
        return area, delay, energy

    def _array_component_arrays(self, h, k, l, bx: int, bw: int):
        """Gathered (area, delay, energy) triples for the six components
        both architectures share (the FP mantissa datapath is the integer
        array with ``bx = bw = BM``): select, multiply, adder tree,
        accumulator, fusion, input buffer.
        """
        lib = self.library
        return (
            self._gather(
                list(l), lambda li: self._cost(("mux", li), lambda: mux(lib, li))
            ),
            self._gather(
                list(k),
                lambda ki: self._cost(
                    ("mult", ki), lambda: multiplier_1xn(lib, ki)
                ),
            ),
            self._gather(
                list(zip(h, k)),
                lambda hk: self._cost(
                    ("tree", *hk), lambda: adder_tree(lib, hk[0], hk[1])
                ),
            ),
            self._gather(
                list(h),
                lambda hi: self._cost(
                    ("accu", bx, hi), lambda: shift_accumulator(lib, bx, hi)
                ),
            ),
            self._gather(
                list(h),
                lambda hi: self._cost(
                    ("fusion", bw, bx, hi), lambda: result_fusion(lib, bw, bx, hi)
                ),
            ),
            self._gather(
                list(h),
                lambda hi: self._cost(
                    ("buffer", hi, bx), lambda: input_buffer(lib, hi, bx)
                ),
            ),
        )

    # Integer architecture -------------------------------------------------
    def evaluate_int(
        self,
        n: Sequence[int],
        h: Sequence[int],
        l: Sequence[int],
        k: Sequence[int],
        *,
        bx: int,
        bw: int,
    ) -> BatchCost:
        """Batch of Table V evaluations (``int_macro_cost`` vectorised).

        Args:
            n / h / l / k: equal-length per-genome parameter columns.
            bx / bw: input and weight widths, shared by the batch.
        """
        if not len(n):
            return _empty_batch("int-mul", self.backend)
        # Parameters draw from tiny discrete sets, so validating the
        # unique tuples (first-occurrence order) covers the whole batch
        # without an O(batch) scalar loop; same errors, same order.
        seen: set[tuple[int, int, int, int]] = set()
        for params in zip(n, h, l, k):
            if params not in seen:
                seen.add(params)
                validate_int_params(*params, bx, bw)
        if self.backend == "numpy":
            return self._int_numpy(n, h, l, k, bx, bw)
        return self._int_python(n, h, l, k, bx, bw)

    def _int_python(self, n, h, l, k, bx: int, bw: int) -> BatchCost:
        # The fallback IS the scalar model, fed memoised components: one
        # formula copy, bit-identical by construction.
        return _batch_from_macro_costs(
            "int-mul",
            [
                self._int_macro_cost(ni, hi, li, ki, bx, bw)
                for ni, hi, li, ki in zip(n, h, l, k)
            ],
        )

    def _int_numpy(self, n, h, l, k, bx: int, bw: int) -> BatchCost:
        lib = self.library
        n64 = _np.asarray(n, dtype=_np.int64)
        h64 = _np.asarray(h, dtype=_np.int64)
        l64 = _np.asarray(l, dtype=_np.int64)
        k64 = _np.asarray(k, dtype=_np.int64)

        (
            (sel_a, sel_d, sel_e),
            (mul_a, mul_d, mul_e),
            (tre_a, tre_d, tre_e),
            (acc_a, acc_d, acc_e),
            (fus_a, fus_d, fus_e),
            (buf_a, _, buf_e),
        ) = self._array_component_arrays(h, k, l, bx, bw)

        nh = n64 * h64
        nhf = nh.astype(_np.float64)
        nf = n64.astype(_np.float64)
        hf = h64.astype(_np.float64)
        fuf = (n64 // bw).astype(_np.float64)
        sram_area = (nh * l64).astype(_np.float64) * lib.sram.area

        cycles64 = -((-bx) // k64)
        cyclesf = cycles64.astype(_np.float64)
        per_cycle = nhf * sel_e + nhf * mul_e + nf * tre_e + nf * acc_e
        per_pass = buf_e + fuf * fus_e
        energy = per_cycle * cyclesf + per_pass
        area = (
            sram_area
            + nhf * sel_a
            + nhf * mul_a
            + nf * tre_a
            + nf * acc_a
            + fuf * fus_a
            + buf_a
        )
        delay = _np.maximum(_np.maximum(sel_d + mul_d + tre_d, acc_d), fus_d)
        ops = (2.0 * hf) * (nf / float(bw))
        return BatchCost(
            "int-mul",
            "numpy",
            tuple(area.tolist()),
            tuple(delay.tolist()),
            tuple(energy.tolist()),
            tuple(cycles64.tolist()),
            tuple(ops.tolist()),
            tuple((nh * l64).tolist()),
        )

    # Floating-point architecture -----------------------------------------
    def evaluate_fp(
        self,
        n: Sequence[int],
        h: Sequence[int],
        l: Sequence[int],
        k: Sequence[int],
        *,
        be: int,
        bm: int,
    ) -> BatchCost:
        """Batch of Table VI evaluations (``fp_macro_cost`` vectorised).

        Args:
            n / h / l / k: equal-length per-genome parameter columns.
            be / bm: exponent and mantissa datapath widths, shared by
                the batch.
        """
        if not len(n):
            return _empty_batch("fp-prealign", self.backend)
        seen: set[tuple[int, int, int, int]] = set()
        for params in zip(n, h, l, k):
            if params not in seen:
                seen.add(params)
                validate_fp_params(*params, be, bm)
        if self.backend == "numpy":
            return self._fp_numpy(n, h, l, k, be, bm)
        return self._fp_python(n, h, l, k, be, bm)

    def _fp_python(self, n, h, l, k, be: int, bm: int) -> BatchCost:
        return _batch_from_macro_costs(
            "fp-prealign",
            [
                self._fp_macro_cost(ni, hi, li, ki, be, bm)
                for ni, hi, li, ki in zip(n, h, l, k)
            ],
        )

    def _fp_numpy(self, n, h, l, k, be: int, bm: int) -> BatchCost:
        lib = self.library
        n64 = _np.asarray(n, dtype=_np.int64)
        h64 = _np.asarray(h, dtype=_np.int64)
        l64 = _np.asarray(l, dtype=_np.int64)
        k64 = _np.asarray(k, dtype=_np.int64)

        (
            (sel_a, sel_d, sel_e),
            (mul_a, mul_d, mul_e),
            (tre_a, tre_d, tre_e),
            (acc_a, acc_d, acc_e),
            (fus_a, fus_d, fus_e),
            (buf_a, _, buf_e),
        ) = self._array_component_arrays(h, k, l, bm, bm)
        ali_a, ali_d, ali_e = self._gather(
            list(h),
            lambda hi: self._cost(
                ("align", hi, be, bm), lambda: prealignment(lib, hi, be, bm)
            ),
        )
        cvt_a, cvt_d, cvt_e = self._gather(
            list(h),
            lambda hi: self._cost(
                ("convert", bm, hi, be),
                lambda: int_to_fp_converter(lib, bm, bm, hi, be),
            ),
        )
        reg_a, _, reg_e = self._gather(
            list(h),
            lambda hi: self._cost(
                ("regs", hi * be), lambda: register_bank(lib, hi * be)
            ),
        )

        nh = n64 * h64
        nhf = nh.astype(_np.float64)
        nf = n64.astype(_np.float64)
        hf = h64.astype(_np.float64)
        fuf = (n64 // bm).astype(_np.float64)
        sram_area = (nh * l64).astype(_np.float64) * lib.sram.area

        cycles64 = -((-bm) // k64)
        cyclesf = cycles64.astype(_np.float64)
        per_cycle = nhf * sel_e + nhf * mul_e + nf * tre_e + nf * acc_e
        per_pass = buf_e + ali_e + reg_e + fuf * fus_e + fuf * cvt_e
        energy = per_cycle * cyclesf + per_pass
        area = (
            sram_area
            + nhf * sel_a
            + nhf * mul_a
            + nf * tre_a
            + nf * acc_a
            + fuf * fus_a
            + buf_a
            + ali_a
            + reg_a
            + fuf * cvt_a
        )
        delay = _np.maximum(
            _np.maximum(
                _np.maximum(_np.maximum(ali_d, sel_d + mul_d + tre_d), acc_d),
                fus_d,
            ),
            cvt_d,
        )
        ops = (2.0 * hf) * (nf / float(bm))
        return BatchCost(
            "fp-prealign",
            "numpy",
            tuple(area.tolist()),
            tuple(delay.tolist()),
            tuple(energy.tolist()),
            tuple(cycles64.tolist()),
            tuple(ops.tolist()),
            tuple((nh * l64).tolist()),
        )

    # Design-point front end -----------------------------------------------
    def evaluate_points(self, points: Sequence) -> BatchCost:
        """Batch-evaluate :class:`~repro.core.spec.DesignPoint`-likes.

        Points may mix precisions and architecture templates: the batch
        is grouped per precision, each group runs through the matching
        architecture model, and the columns are scattered back into
        input order.
        """
        if not points:
            return _empty_batch("mixed", self.backend)
        groups: dict = {}
        for i, point in enumerate(points):
            groups.setdefault(point.precision, []).append(i)
        archs = {point.arch for point in points}
        arch = archs.pop() if len(archs) == 1 else "mixed"
        columns: list[list] = [[None] * len(points) for _ in range(6)]
        for precision, indices in groups.items():
            n = [points[i].n for i in indices]
            h = [points[i].h for i in indices]
            l = [points[i].l for i in indices]
            k = [points[i].k for i in indices]
            if precision.is_float:
                part = self.evaluate_fp(
                    n, h, l, k, be=precision.exponent_bits, bm=precision.mantissa_bits
                )
            else:
                part = self.evaluate_int(
                    n, h, l, k, bx=precision.bits, bw=precision.bits
                )
            rows = (
                part.area,
                part.delay,
                part.energy_per_pass,
                part.cycles_per_pass,
                part.ops_per_pass,
                part.sram_bits,
            )
            for column, row in zip(columns, rows):
                for j, i in enumerate(indices):
                    column[i] = row[j]
        return BatchCost(arch, self.backend, *(tuple(c) for c in columns))

    def objectives_of_points(self, points: Sequence) -> list[tuple[float, ...]]:
        """``[A, D, E, -T]`` rows for many design points, in input order."""
        return self.evaluate_points(points).objectives()

    # Scalar wrappers -------------------------------------------------------
    def macro_cost(self, point) -> MacroCost:
        """Full :class:`MacroCost` (with breakdown) for one design point.

        Identical to :meth:`DesignPoint.macro_cost`, but the component
        models come from the engine's memo — a batch of one.
        """
        p = point.precision
        if p.is_float:
            return self._fp_macro_cost(
                point.n, point.h, point.l, point.k, p.exponent_bits, p.mantissa_bits
            )
        return self._int_macro_cost(point.n, point.h, point.l, point.k, p.bits, p.bits)

    def macro_costs(self, points: Sequence) -> list[MacroCost]:
        """Full macro costs for many points, sharing the component memo."""
        return [self.macro_cost(point) for point in points]

    def _int_macro_cost(self, n, h, l, k, bx, bw) -> MacroCost:
        return int_macro_cost(
            self.library,
            n=n,
            h=h,
            l=l,
            k=k,
            bx=bx,
            bw=bw,
            components=self._int_components(l, k, h, bx, bw),
        )

    def _fp_macro_cost(self, n, h, l, k, be, bm) -> MacroCost:
        return fp_macro_cost(
            self.library,
            n=n,
            h=h,
            l=l,
            k=k,
            be=be,
            bm=bm,
            components=self._fp_components(l, k, h, be, bm),
        )
