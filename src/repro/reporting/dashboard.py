"""Static HTML operations dashboard rendered from the run registry.

``repro dashboard`` turns a :class:`~repro.store.runstore.RunStore` —
its ``metrics_history`` rows (sampled by
:class:`~repro.obs.snapshot.MetricsSnapshotter`) plus the recorded runs
— into one self-contained HTML file: stat tiles, SVG traffic/cache/
queue charts, per-problem latency quantiles, the recent-run table, and
a slowest-traces explorer with per-trace span waterfalls (fed by the
``trace_spans`` table :mod:`repro.obs.trace` persists).
No third-party dependencies, no external assets, no scripts: the file
is inert and viewable from disk.

Chart series are derived from *counter deltas* between consecutive
snapshots (requests/s, evaluations/s), so restarting the server (which
resets the in-process counters) shows up as a clamped-to-zero dip
rather than a negative spike.
"""

from __future__ import annotations

import html
import math
from pathlib import Path

__all__ = ["render_dashboard", "write_dashboard"]

#: Data-series and surface colors (light, dark) — series identity uses
#: one blue (single-series charts); text wears ink tokens, never the
#: series color.
_PALETTE = {
    "series": ("#2a78d6", "#3987e5"),
    "surface": ("#fcfcfb", "#1a1a19"),
    "ink": ("#0b0b0b", "#ffffff"),
    "secondary": ("#52514e", "#c3c2b7"),
    "muted": ("#898781", "#898781"),
    "grid": ("#e1e0d9", "#2c2c2a"),
    "baseline": ("#c3c2b7", "#383835"),
    "error": ("#c43d3d", "#e05c5c"),
}

_CHART_W = 560
_CHART_H = 150
_PAD_L = 46
_PAD_R = 10
_PAD_T = 8
_PAD_B = 20


def _series_total(metrics: dict[str, float], name: str) -> float:
    """Sum every series of one family in a flat sample.

    Samples key labelled series as ``name{a="b"}``; summing across the
    labels gives the family total (e.g. all routes, all backends).
    """
    prefix = name + "{"
    return float(
        sum(
            value
            for key, value in metrics.items()
            if key == name or key.startswith(prefix)
        )
    )


def _rate_series(
    snapshots, name: str
) -> list[tuple[float, float]]:
    """Per-second increase of a counter family between snapshots."""
    points = []
    previous = None
    for snap in snapshots:
        total = _series_total(snap.metrics, name)
        if previous is not None:
            prev_t, prev_total = previous
            dt = snap.snapshot_at - prev_t
            if dt > 0:
                # A server restart resets counters; clamp the delta so
                # the chart dips to zero instead of going negative.
                rate = max(0.0, total - prev_total) / dt
                points.append((snap.snapshot_at, rate))
        previous = (snap.snapshot_at, total)
    return points


def _gauge_series(snapshots, name: str) -> list[tuple[float, float]]:
    """A gauge family's summed value at each snapshot."""
    return [
        (snap.snapshot_at, _series_total(snap.metrics, name))
        for snap in snapshots
    ]


def _hit_rate_series(snapshots) -> list[tuple[float, float]]:
    """Cache hit rate over each inter-snapshot window (counter deltas)."""
    points = []
    previous = None
    for snap in snapshots:
        hits = _series_total(snap.metrics, "repro_cache_hits_total")
        misses = _series_total(snap.metrics, "repro_cache_misses_total")
        if previous is not None:
            d_hits = max(0.0, hits - previous[0])
            d_misses = max(0.0, misses - previous[1])
            lookups = d_hits + d_misses
            if lookups > 0:
                points.append((snap.snapshot_at, d_hits / lookups))
        previous = (hits, misses)
    return points


def _format_value(value: float) -> str:
    if value != value or math.isinf(value):  # NaN / inf guard
        return "–"
    if abs(value) >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if abs(value) >= 10_000:
        return f"{value / 1000:.1f}k"
    if value == int(value):
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def _format_clock(epoch: float) -> str:
    import datetime

    stamp = datetime.datetime.fromtimestamp(epoch)
    return stamp.strftime("%H:%M:%S")


def _format_date(epoch: float) -> str:
    import datetime

    stamp = datetime.datetime.fromtimestamp(epoch)
    return stamp.strftime("%Y-%m-%d %H:%M")


def _svg_chart(
    points: list[tuple[float, float]],
    unit: str = "",
    y_max_floor: float = 0.0,
) -> str:
    """One single-series SVG line chart (2px line, hover tooltips).

    The series is unnamed inside the plot — the card title names it, so
    no legend is needed.  One y-axis, min/max gridline labels, native
    ``<title>`` tooltips on enlarged hover targets.
    """
    if len(points) < 2:
        return (
            '<div class="placeholder">not enough samples yet — '
            "serve with <code>--snapshot-every</code> and a store, then "
            "re-render</div>"
        )
    xs = [t for t, _ in points]
    ys = [v for _, v in points]
    x_min, x_max = min(xs), max(xs)
    y_min = 0.0
    y_max = max(max(ys), y_max_floor)
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_span = (x_max - x_min) or 1.0
    plot_w = _CHART_W - _PAD_L - _PAD_R
    plot_h = _CHART_H - _PAD_T - _PAD_B

    def sx(t: float) -> float:
        return _PAD_L + (t - x_min) / x_span * plot_w

    def sy(v: float) -> float:
        return _PAD_T + (1.0 - (v - y_min) / (y_max - y_min)) * plot_h

    coords = [(sx(t), sy(v)) for t, v in points]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    dots = "".join(
        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="8" class="hit">'
        f"<title>{_format_clock(t)} — {_format_value(v)}{unit}</title>"
        f"</circle>"
        for (x, y), (t, v) in zip(coords, points)
    )
    baseline_y = sy(y_min)
    mid_y = sy((y_min + y_max) / 2)
    top_y = sy(y_max)
    return (
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'preserveAspectRatio="none">'
        f'<line class="grid" x1="{_PAD_L}" y1="{top_y:.1f}" '
        f'x2="{_CHART_W - _PAD_R}" y2="{top_y:.1f}"/>'
        f'<line class="grid" x1="{_PAD_L}" y1="{mid_y:.1f}" '
        f'x2="{_CHART_W - _PAD_R}" y2="{mid_y:.1f}"/>'
        f'<line class="axis" x1="{_PAD_L}" y1="{baseline_y:.1f}" '
        f'x2="{_CHART_W - _PAD_R}" y2="{baseline_y:.1f}"/>'
        f'<text class="tick" x="{_PAD_L - 6}" y="{top_y + 4:.1f}" '
        f'text-anchor="end">{_format_value(y_max)}{unit}</text>'
        f'<text class="tick" x="{_PAD_L - 6}" y="{baseline_y + 4:.1f}" '
        f'text-anchor="end">{_format_value(y_min)}</text>'
        f'<text class="tick" x="{_PAD_L}" y="{_CHART_H - 6}">'
        f"{_format_clock(x_min)}</text>"
        f'<text class="tick" x="{_CHART_W - _PAD_R}" y="{_CHART_H - 6}" '
        f'text-anchor="end">{_format_clock(x_max)}</text>'
        f'<polyline class="series" points="{polyline}"/>'
        f"{dots}"
        f"</svg>"
    )


def _stat_tiles(snapshots, runs) -> str:
    latest = snapshots[-1].metrics if snapshots else {}
    hits = _series_total(latest, "repro_cache_hits_total")
    misses = _series_total(latest, "repro_cache_misses_total")
    lookups = hits + misses
    tiles = (
        ("HTTP requests", _series_total(latest, "repro_http_requests_total"), ""),
        ("Evaluations", _series_total(latest, "repro_evaluations_total"), ""),
        (
            "Cache hit rate",
            (hits / lookups * 100) if lookups else float("nan"),
            "%",
        ),
        (
            "Jobs done",
            _series_total(latest, 'repro_jobs_total{status="done"}'),
            "",
        ),
        ("Rejected", _series_total(latest, "repro_admission_rejected_total"), ""),
        ("Recorded runs", float(len(runs)), ""),
    )
    cells = "".join(
        f'<div class="tile"><div class="tile-value">'
        f"{_format_value(value)}{unit}</div>"
        f'<div class="tile-label">{html.escape(label)}</div></div>'
        for label, value, unit in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _quantile(sample: list[float], q: float) -> float:
    if not sample:
        return float("nan")
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _latency_table(runs) -> str:
    """Per-problem campaign wall-time quantiles from recorded runs."""
    by_problem: dict[str, list[float]] = {}
    for record in runs:
        if record.status == "done":
            by_problem.setdefault(record.problem, []).append(
                record.wall_time_s
            )
    if not by_problem:
        return '<div class="placeholder">no finished runs recorded yet</div>'
    rows = "".join(
        f"<tr><td>{html.escape(problem)}</td>"
        f'<td class="num">{len(sample)}</td>'
        f'<td class="num">{_quantile(sample, 0.5):.2f}</td>'
        f'<td class="num">{_quantile(sample, 0.95):.2f}</td>'
        f'<td class="num">{_quantile(sample, 0.99):.2f}</td></tr>'
        for problem, sample in sorted(by_problem.items())
    )
    return (
        "<table><thead><tr><th>problem</th>"
        '<th class="num">runs</th><th class="num">p50 (s)</th>'
        '<th class="num">p95 (s)</th><th class="num">p99 (s)</th>'
        f"</tr></thead><tbody>{rows}</tbody></table>"
    )


def _runs_table(runs) -> str:
    if not runs:
        return '<div class="placeholder">no runs recorded yet</div>'
    rows = "".join(
        f"<tr><td><code>{html.escape(record.run_id)}</code></td>"
        f"<td>{html.escape(record.problem)}</td>"
        f"<td>{html.escape(record.status)}</td>"
        f"<td>{html.escape(record.strategy or '-')}</td>"
        f'<td class="num">{len(record.specs)}</td>'
        f'<td class="num">{record.front_size}</td>'
        f'<td class="num">{record.evaluations}</td>'
        f'<td class="num">{record.wall_time_s:.2f}</td>'
        f"<td>{_format_date(record.created_at)}</td></tr>"
        for record in runs
    )
    return (
        "<table><thead><tr><th>run</th><th>problem</th><th>status</th>"
        '<th>strategy</th>'
        '<th class="num">specs</th><th class="num">front</th>'
        '<th class="num">evals</th><th class="num">wall (s)</th>'
        f"<th>recorded</th></tr></thead><tbody>{rows}</tbody></table>"
    )


def _workers_table(store) -> str:
    """Per-worker totals across recorded distributed runs."""
    try:
        workers = store.worker_summary()
    except Exception:  # store predates the work_units table
        workers = []
    if not workers:
        return (
            '<div class="placeholder">no distributed runs recorded yet — '
            "serve with <code>--workers-remote</code> and connect "
            "<code>repro worker</code> processes</div>"
        )
    rows = "".join(
        f"<tr><td><code>{html.escape(str(w['worker_id']))}</code></td>"
        f'<td class="num">{w["units"]}</td>'
        f'<td class="num">{w["units_done"]}</td>'
        f'<td class="num">{_format_value(float(w["evaluations"]))}</td>'
        f'<td class="num">{w["wall_time_s"]:.2f}</td></tr>'
        for w in workers
    )
    return (
        "<table><thead><tr><th>worker</th>"
        '<th class="num">units</th><th class="num">done</th>'
        '<th class="num">evals</th><th class="num">wall (s)</th>'
        f"</tr></thead><tbody>{rows}</tbody></table>"
    )


def _snapshot_table(snapshots, limit: int = 10) -> str:
    """Table view of the charted history (accessibility fallback)."""
    if not snapshots:
        return '<div class="placeholder">no metrics history yet</div>'
    recent = snapshots[-limit:]
    rows = "".join(
        f"<tr><td>{_format_date(snap.snapshot_at)}</td>"
        f"<td>{html.escape(snap.source)}</td>"
        f'<td class="num">'
        f'{_format_value(_series_total(snap.metrics, "repro_http_requests_total"))}'
        f"</td>"
        f'<td class="num">'
        f'{_format_value(_series_total(snap.metrics, "repro_evaluations_total"))}'
        f"</td>"
        f'<td class="num">'
        f'{_format_value(_series_total(snap.metrics, "repro_queue_depth"))}'
        f"</td></tr>"
        for snap in recent
    )
    return (
        "<table><thead><tr><th>sampled</th><th>source</th>"
        '<th class="num">requests</th><th class="num">evals</th>'
        '<th class="num">queue depth</th></tr></thead>'
        f"<tbody>{rows}</tbody></table>"
    )


#: Waterfall layout: per-span row height / bar height and the most
#: spans one trace card draws (deep GA traces stay readable).
_ROW_H = 18
_BAR_H = 12
_WATERFALL_SPAN_CAP = 48


def _format_ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _traces_table(traces: list[dict]) -> str:
    """Slowest persisted traces, one row each."""
    if not traces:
        return (
            '<div class="placeholder">no traces recorded yet — serve '
            "with a store (tracing is on by default), then re-render</div>"
        )
    rows = "".join(
        f"<tr><td><code>{html.escape(t['trace_id'])}</code></td>"
        f"<td>{html.escape(t.get('name') or '')}</td>"
        f"<td>{html.escape(t.get('status') or 'ok')}</td>"
        f'<td class="num">{t.get("span_count", 0)}</td>'
        f'<td class="num">{_format_ms(t.get("duration_s") or 0.0)}</td>'
        f"<td>{html.escape(t.get('run_id') or '-')}</td>"
        f"<td>{_format_date(t.get('start_time') or 0.0)}</td></tr>"
        for t in traces
    )
    return (
        "<table><thead><tr><th>trace</th><th>root</th><th>status</th>"
        '<th class="num">spans</th><th class="num">duration</th>'
        f"<th>run</th><th>started</th></tr></thead><tbody>{rows}</tbody>"
        "</table>"
    )


def _trace_waterfall(spans: list[dict]) -> str:
    """One trace's spans as an SVG Gantt (offset + width = timing).

    Rows keep start-time order; labels indent by tree depth so the
    request → campaign → spec → generation nesting reads without
    connectors.  Error spans use the error color; every bar carries a
    native tooltip with name, duration, category, and thread.
    """
    if not spans:
        return '<div class="placeholder">trace has no recorded spans</div>'
    rows = sorted(spans, key=lambda s: (s["start_time"], s["span_id"]))
    clipped = max(0, len(rows) - _WATERFALL_SPAN_CAP)
    rows = rows[:_WATERFALL_SPAN_CAP]
    t0 = min(r["start_time"] for r in rows)
    t1 = max(r["start_time"] + max(r["duration_s"], 0.0) for r in rows)
    window = (t1 - t0) or 1e-9
    by_id = {r["span_id"]: r for r in rows}

    def depth_of(row: dict) -> int:
        depth, parent, seen = 0, row.get("parent_id"), set()
        while parent in by_id and parent not in seen:
            seen.add(parent)
            depth += 1
            parent = by_id[parent].get("parent_id")
        return depth

    plot_w = _CHART_W - _PAD_L - _PAD_R
    height = _PAD_T + len(rows) * _ROW_H + _PAD_B
    bars = []
    for index, row in enumerate(rows):
        x = _PAD_L + (row["start_time"] - t0) / window * plot_w
        w = max(1.5, max(row["duration_s"], 0.0) / window * plot_w)
        y = _PAD_T + index * _ROW_H + (_ROW_H - _BAR_H) / 2
        errored = row.get("status") == "error"
        label = f"{'· ' * depth_of(row)}{row.get('name', 'span')}"
        detail = (
            f"{row.get('name', 'span')} — "
            f"{_format_ms(max(row.get('duration_s', 0.0), 0.0))}"
            f" [{row.get('category') or 'app'}]"
            + (f" on {row['thread']}" if row.get("thread") else "")
            + (f" — {row['error']}" if row.get("error") else "")
        )
        # The label sits after short bars and before bars pinned to the
        # right edge, so text never paints over the bar itself.
        if x + w + 6 <= _CHART_W - _PAD_R - 30:
            label_x, anchor = x + w + 4, "start"
        else:
            label_x, anchor = x - 4, "end"
        bars.append(
            f'<rect class="bar{" error" if errored else ""}" '
            f'x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{_BAR_H}">'
            f"<title>{html.escape(detail)}</title></rect>"
            f'<text class="bar-label" x="{label_x:.1f}" '
            f'y="{y + _BAR_H - 2.5:.1f}" text-anchor="{anchor}">'
            f"{html.escape(label)}</text>"
        )
    axis_y = _PAD_T + len(rows) * _ROW_H + 2
    note = (
        f'<text class="tick" x="{_PAD_L}" y="{height - 6}">'
        f"+{clipped} spans not drawn</text>"
        if clipped
        else f'<text class="tick" x="{_PAD_L}" y="{height - 6}">0</text>'
    )
    end_label = (
        f'<text class="tick" x="{_CHART_W - _PAD_R}" y="{height - 6}" '
        f'text-anchor="end">{_format_ms(window)}</text>'
    )
    return (
        f'<svg viewBox="0 0 {_CHART_W} {height}" role="img">'
        f'<line class="axis" x1="{_PAD_L}" y1="{axis_y}" '
        f'x2="{_CHART_W - _PAD_R}" y2="{axis_y}"/>'
        f"{''.join(bars)}{note}{end_label}</svg>"
    )


def _traces_section(store, traces_limit: int) -> str:
    """Slowest-traces table plus waterfalls for the top three."""
    try:
        traces = store.trace_list(limit=200)
    except Exception:  # pre-trace registry or store without the table
        traces = []
    slowest = sorted(
        traces, key=lambda t: t.get("duration_s") or 0.0, reverse=True
    )[:traces_limit]
    parts = [_traces_table(slowest)]
    for summary in slowest[:3]:
        spans = store.trace_spans(summary["trace_id"])
        title = (
            f"{summary.get('name') or 'trace'} — "
            f"{_format_ms(summary.get('duration_s') or 0.0)} "
            f"({summary['trace_id']})"
        )
        parts.append(
            f'<div class="card"><h3>{html.escape(title)}</h3>'
            f"{_trace_waterfall(spans)}</div>"
        )
    return "".join(parts)


def _css() -> str:
    light = {name: pair[0] for name, pair in _PALETTE.items()}
    dark = {name: pair[1] for name, pair in _PALETTE.items()}

    def block(colors: dict[str, str]) -> str:
        return (
            f"--series:{colors['series']};--surface:{colors['surface']};"
            f"--ink:{colors['ink']};--secondary:{colors['secondary']};"
            f"--muted:{colors['muted']};--grid:{colors['grid']};"
            f"--baseline:{colors['baseline']};--error:{colors['error']};"
        )

    return f"""
:root {{ {block(light)} }}
@media (prefers-color-scheme: dark) {{ :root {{ {block(dark)} }} }}
[data-theme="light"] {{ {block(light)} }}
[data-theme="dark"] {{ {block(dark)} }}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
h1 {{ font-size: 20px; margin: 0 0 2px; }}
.subtitle {{ color: var(--secondary); margin: 0 0 20px; }}
h2 {{ font-size: 15px; margin: 26px 0 10px; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; }}
.tile {{
  border: 1px solid var(--grid); border-radius: 8px;
  padding: 12px 16px; min-width: 128px;
}}
.tile-value {{ font-size: 22px; font-weight: 600; }}
.tile-label {{ color: var(--secondary); font-size: 12px; }}
.charts {{
  display: grid; gap: 16px;
  grid-template-columns: repeat(auto-fit, minmax(320px, 1fr));
}}
.card {{
  border: 1px solid var(--grid); border-radius: 8px; padding: 12px 14px;
}}
.card h3 {{
  font-size: 13px; margin: 0 0 8px; color: var(--secondary);
  font-weight: 600;
}}
svg {{ width: 100%; height: auto; display: block; }}
.series {{ fill: none; stroke: var(--series); stroke-width: 2; }}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.axis {{ stroke: var(--baseline); stroke-width: 1; }}
.tick {{ fill: var(--muted); font-size: 10px; }}
.hit {{ fill: transparent; }}
.hit:hover {{ fill: var(--series); fill-opacity: 0.25; }}
.bar {{ fill: var(--series); fill-opacity: 0.85; }}
.bar.error {{ fill: var(--error); }}
.bar:hover {{ fill-opacity: 1; }}
.bar-label {{ fill: var(--secondary); font-size: 10px; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{
  text-align: left; padding: 6px 10px;
  border-bottom: 1px solid var(--grid);
}}
th {{ color: var(--secondary); font-weight: 600; font-size: 12px; }}
td.num, th.num {{
  text-align: right; font-variant-numeric: tabular-nums;
}}
code {{ font-size: 12px; }}
.placeholder {{
  color: var(--muted); border: 1px dashed var(--grid);
  border-radius: 8px; padding: 18px; text-align: center;
}}
footer {{ color: var(--muted); font-size: 12px; margin-top: 28px; }}
"""


def render_dashboard(
    store,
    title: str = "repro operations",
    history_limit: int = 500,
    runs_limit: int = 15,
    traces_limit: int = 8,
) -> str:
    """Render the operations dashboard as one self-contained HTML page.

    Args:
        store: a :class:`~repro.store.runstore.RunStore`.
        title: page heading.
        history_limit: most recent metrics snapshots charted.
        runs_limit: rows in the recent-runs table.
        traces_limit: rows in the slowest-traces table (the three
            slowest also get a span waterfall).
    """
    snapshots = store.metrics_history(limit=history_limit)
    runs = store.list_runs(limit=max(runs_limit, 200))
    charts = (
        ("Requests / s", _svg_chart(_rate_series(snapshots, "repro_http_requests_total"), "/s")),
        ("Evaluations / s", _svg_chart(_rate_series(snapshots, "repro_evaluations_total"), "/s")),
        (
            "Cache hit rate",
            _svg_chart(_hit_rate_series(snapshots), "", y_max_floor=1.0),
        ),
        (
            "Queue depth",
            _svg_chart(
                _gauge_series(snapshots, "repro_queue_depth"), "",
                y_max_floor=1.0,
            ),
        ),
    )
    cards = "".join(
        f'<div class="card"><h3>{html.escape(name)}</h3>{svg}</div>'
        for name, svg in charts
    )
    window = ""
    if snapshots:
        window = (
            f"{len(snapshots)} snapshots, "
            f"{_format_date(snapshots[0].snapshot_at)} – "
            f"{_format_date(snapshots[-1].snapshot_at)}"
        )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_css()}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<p class="subtitle">{html.escape(window) or "no metrics history recorded"}</p>
{_stat_tiles(snapshots, runs)}
<h2>Traffic</h2>
<div class="charts">{cards}</div>
<h2>Campaign latency by problem</h2>
{_latency_table(runs)}
<h2>Recent runs</h2>
{_runs_table(runs[:runs_limit])}
<h2>Distributed workers</h2>
{_workers_table(store)}
<h2>Slowest traces</h2>
{_traces_section(store, traces_limit)}
<h2>Recent snapshots</h2>
{_snapshot_table(snapshots)}
<footer>rendered by <code>repro dashboard</code> from the run
registry; metrics are sampled by the serving process
(<code>repro serve --store … --snapshot-every …</code>).</footer>
</body>
</html>
"""


def write_dashboard(store, path: str | Path, **kwargs) -> Path:
    """Render and write the dashboard; returns the output path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(store, **kwargs), encoding="utf-8")
    return out
