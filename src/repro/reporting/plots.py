"""ASCII scatter plots for the figure-reproduction harness.

The paper's Fig. 7/8 are scatter plots; with no plotting stack offline,
the benches render them as text grids good enough to see trends and
crossovers in a terminal or a results file.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["ascii_scatter"]

_MARKERS = "xo+*#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return list(values)
    out = []
    for v in values:
        if v <= 0:
            raise ValueError("log-scale axes need positive values")
        out.append(math.log10(v))
    return out


def ascii_scatter(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (xs, ys) series as an ASCII scatter plot.

    Args:
        series: name -> (xs, ys); each series gets its own marker.
        width, height: plot grid size in characters.
        log_x, log_y: log10 axes.
        x_label, y_label: axis captions.

    Raises:
        ValueError: for empty input or non-positive values on log axes.
    """
    if not series or all(len(xs) == 0 for xs, _ in series.values()):
        raise ValueError("need at least one non-empty series")
    points = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: xs and ys differ in length")
        points.append((name, _transform(xs, log_x), _transform(ys, log_y)))

    all_x = [v for _, xs, _ in points for v in xs]
    all_y = [v for _, _, ys in points for v in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, xs, ys) in enumerate(points):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(v: float, log: bool) -> str:
        return f"1e{v:.1f}" if log else f"{v:.3g}"

    lines = [f"{y_label} ({fmt(y_hi, log_y)} top, {fmt(y_lo, log_y)} bottom)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {fmt(x_lo, log_x)} .. {fmt(x_hi, log_x)}"
        + ("  [log x]" if log_x else "")
        + ("  [log y]" if log_y else "")
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
