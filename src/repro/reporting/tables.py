"""ASCII table / CSV rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_table", "csv_table", "format_si"]


def _stringify(row: Sequence) -> list[str]:
    out = []
    for cell in row:
        if isinstance(cell, float):
            out.append(f"{cell:.4g}")
        else:
            out.append(str(cell))
    return out


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width ASCII table.

    Args:
        headers: column titles.
        rows: row cells (floats formatted to 4 significant digits).
    """
    head = [str(h) for h in headers]
    body = [_stringify(r) for r in rows]
    for r in body:
        if len(r) != len(head):
            raise ValueError(
                f"row width {len(r)} does not match header width {len(head)}"
            )
    widths = [
        max(len(head[c]), *(len(r[c]) for r in body)) if body else len(head[c])
        for c in range(len(head))
    ]
    def fmt(cells: list[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = [sep, fmt(head), sep]
    lines.extend(fmt(r) for r in body)
    lines.append(sep)
    return "\n".join(lines)


def csv_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as simple CSV (no quoting; cells must be plain)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        cells = _stringify(row)
        if any("," in c for c in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


_SI = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]
_BINARY = [(2**40, "T"), (2**30, "G"), (2**20, "M"), (2**10, "K")]


def format_si(value: float, unit: str = "") -> str:
    """Human-readable magnitude formatting (e.g. ``65536 -> '64K'``).

    Exact multiples of 1024 use binary prefixes (the paper's ``8K`` /
    ``64K`` weight counts are binary); everything else is decimal SI.
    """
    if value and value == int(value) and int(value) % 1024 == 0:
        for scale, prefix in _BINARY:
            if abs(value) >= scale and int(value) % scale == 0:
                return f"{int(value) // scale}{prefix}{unit}"
    for scale, prefix in _SI:
        if abs(value) >= scale:
            scaled = value / scale
            text = f"{scaled:.0f}" if scaled == int(scaled) else f"{scaled:.1f}"
            return f"{text}{prefix}{unit}"
    return f"{value:g}{unit}"
