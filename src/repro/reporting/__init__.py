"""Reporting utilities for benches, examples, and the run registry."""

from repro.reporting.dashboard import render_dashboard, write_dashboard
from repro.reporting.plots import ascii_scatter
from repro.reporting.power import area_report, full_report, power_report, timing_report
from repro.reporting.runs import (
    comparison_markdown,
    run_report_csv,
    run_report_markdown,
)
from repro.reporting.tables import ascii_table, csv_table, format_si

__all__ = [
    "ascii_table",
    "csv_table",
    "format_si",
    "ascii_scatter",
    "area_report",
    "power_report",
    "timing_report",
    "full_report",
    "run_report_markdown",
    "run_report_csv",
    "comparison_markdown",
    "render_dashboard",
    "write_dashboard",
]
