"""Reporting utilities for benches and examples."""

from repro.reporting.plots import ascii_scatter
from repro.reporting.power import area_report, full_report, power_report, timing_report
from repro.reporting.tables import ascii_table, csv_table, format_si

__all__ = [
    "ascii_table",
    "csv_table",
    "format_si",
    "ascii_scatter",
    "area_report",
    "power_report",
    "timing_report",
    "full_report",
]
