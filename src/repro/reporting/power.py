"""EDA-style area/power report for a macro design.

Renders the per-component breakdown of the estimation model the way a
synthesis tool reports it: absolute units, percentage of total, and the
pipeline-stage timing summary.
"""

from __future__ import annotations

from repro.model.macro import MacroCost
from repro.model.metrics import evaluate_macro
from repro.reporting.tables import ascii_table
from repro.tech.technology import Technology

__all__ = ["area_report", "power_report", "timing_report", "full_report"]


def area_report(cost: MacroCost, tech: Technology) -> str:
    """Per-component area table (um^2 and % of total)."""
    rows = []
    for name, component in sorted(
        cost.breakdown.items(), key=lambda kv: kv[1].area, reverse=True
    ):
        rows.append(
            (
                name,
                f"{tech.area_um2(component.area):.1f}",
                f"{100 * cost.area_fraction(name):.1f}%",
            )
        )
    rows.append(("TOTAL", f"{tech.area_um2(cost.area):.1f}", "100.0%"))
    return "Area report\n" + ascii_table(["component", "um2", "share"], rows)


def power_report(cost: MacroCost, tech: Technology) -> str:
    """Per-component dynamic energy table for one pass.

    SRAM shows zero (hard-wired read, leakage neglected — Table III);
    per-cycle consumers are scaled by the pass cycle count.
    """
    metrics = evaluate_macro(cost, tech)
    per_cycle = {"weight_select", "multiply", "adder_tree", "accumulator"}
    rows = []
    for name, component in sorted(
        cost.breakdown.items(), key=lambda kv: kv[1].energy, reverse=True
    ):
        factor = cost.cycles_per_pass if name in per_cycle else 1
        energy = tech.energy_fj(component.energy * factor)
        share = (
            energy / tech.energy_fj(cost.energy_per_pass)
            if cost.energy_per_pass
            else 0.0
        )
        rows.append((name, f"{energy:.1f}", f"{100 * share:.1f}%"))
    rows.append(
        ("TOTAL/pass", f"{tech.energy_fj(cost.energy_per_pass):.1f}", "100.0%")
    )
    return (
        f"Power report (avg {metrics.power_w:.3f} W at "
        f"{metrics.frequency_ghz:.2f} GHz, {tech.activity:.0%} activity)\n"
        + ascii_table(["component", "fJ", "share"], rows)
    )


def timing_report(cost: MacroCost, tech: Technology) -> str:
    """Pipeline-stage timing table; the max stage sets the clock."""
    rows = []
    for stage, delay in cost.stage_delays.items():
        marker = " <- critical" if stage == cost.critical_stage else ""
        rows.append((stage, f"{tech.delay_ns(delay):.3f}{marker}"))
    rows.append(("clock period", f"{tech.delay_ns(cost.delay):.3f}"))
    return "Timing report\n" + ascii_table(["stage", "ns"], rows)


def full_report(cost: MacroCost, tech: Technology) -> str:
    """Area + timing + power, concatenated."""
    return "\n\n".join(
        (area_report(cost, tech), timing_report(cost, tech), power_report(cost, tech))
    )
