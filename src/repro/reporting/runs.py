"""Markdown / CSV report generation for recorded campaign runs.

Renders :class:`~repro.store.runstore.RunRecord` rows and their fronts
(and :class:`~repro.store.analytics.FrontComparison` results) into
shareable artifacts — the output of ``repro runs export``.
"""

from __future__ import annotations

import time

from repro.reporting.tables import csv_table
from repro.service.api import FrontierPoint
from repro.store.analytics import FrontComparison
from repro.store.runstore import RunRecord

__all__ = [
    "run_report_markdown",
    "run_report_csv",
    "comparison_markdown",
    "front_columns",
    "front_rows",
]

#: Column order shared by the Markdown/CSV front tables and
#: ``repro runs show``.  The ``extras`` column appears only when some
#: point actually carries extras, so dcim renderings keep their pre-v2
#: column layout.
FRONT_COLUMNS = ("precision", "n", "h", "l", "k", "objectives")
FRONT_COLUMNS_EXTRAS = ("precision", "n", "h", "l", "k", "extras",
                        "objectives")


def front_columns(front: list[FrontierPoint]) -> tuple[str, ...]:
    """Headers matching :func:`front_rows` for this front."""
    if any(p.extras for p in front):
        return FRONT_COLUMNS_EXTRAS
    return FRONT_COLUMNS


def front_rows(
    front: list[FrontierPoint], precision: int = 6
) -> list[tuple]:
    """Render a front as table rows (shared by reports and the CLI)."""
    with_extras = any(p.extras for p in front)
    rows = []
    for p in front:
        row = [p.precision, p.n, p.h, p.l, p.k]
        if with_extras:
            row.append(
                " ".join(f"{k}={v}" for k, v in sorted(p.extras.items()))
                or "-"
            )
        row.append(" ".join(f"{o:.{precision}g}" for o in p.objectives))
        rows.append(tuple(row))
    return rows


def _markdown_table(headers: tuple[str, ...], rows: list[tuple]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend(
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    )
    return "\n".join(lines)


def run_report_markdown(
    record: RunRecord, front: list[FrontierPoint]
) -> str:
    """One run as a Markdown document (summary + front table)."""
    recorded = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(record.created_at)
    )
    title = record.name or record.run_id
    lines = [
        f"# Campaign run `{title}`",
        "",
        f"- run id: `{record.run_id}`",
        f"- problem: `{record.problem}`",
        f"- status: **{record.status}**",
        f"- recorded: {recorded}",
        f"- specs: {', '.join(record.specs) or '-'}",
        f"- evaluations: {record.evaluations} "
        f"({record.fresh_evaluations} fresh)",
        f"- wall time: {record.wall_time_s:.2f} s",
        f"- engine: {record.engine_backend or '-'}",
        f"- strategy: {record.strategy or '-'}",
        f"- ga kernels: {record.ga_backend or '-'}",
        f"- fingerprint: `{record.fingerprint[:16]}...`",
    ]
    if record.cache_stats is not None:
        hits = record.cache_stats.get("hits", 0)
        misses = record.cache_stats.get("misses", 0)
        total = hits + misses
        rate = hits / total if total else 0.0
        lines.append(f"- cache: {hits} hits / {misses} misses ({rate:.1%})")
    if record.error:
        lines.append(f"- error: {record.error}")
    lines.extend(["", f"## Merged frontier ({len(front)} designs)", ""])
    if front:
        lines.append(
            _markdown_table(front_columns(front), front_rows(front))
        )
    else:
        lines.append("*(no front recorded)*")
    return "\n".join(lines) + "\n"


def run_report_csv(record: RunRecord, front: list[FrontierPoint]) -> str:
    """One run's front as CSV (objectives space-separated in one cell)."""
    rows = [(record.run_id,) + row for row in front_rows(front)]
    return csv_table(("run_id",) + front_columns(front), rows)


def comparison_markdown(comparison: FrontComparison) -> str:
    """A :class:`FrontComparison` as a Markdown summary table."""
    rows = [
        ("front size", comparison.size_a, comparison.size_b),
        (
            "hypervolume",
            f"{comparison.hypervolume_a:.4f}",
            f"{comparison.hypervolume_b:.4f}",
        ),
        (
            "epsilon-indicator (vs other)",
            f"{comparison.epsilon_ab:.4f}",
            f"{comparison.epsilon_ba:.4f}",
        ),
        (
            "coverage (of other)",
            f"{comparison.coverage_ab:.1%}",
            f"{comparison.coverage_ba:.1%}",
        ),
    ]
    lines = [
        f"# Front comparison: `{comparison.run_a}` vs `{comparison.run_b}`",
        "",
        f"- hypervolume delta (B - A): {comparison.hypervolume_delta:+.4f}",
        f"- front diff: {comparison.shared} shared, {comparison.added} "
        f"added, {comparison.removed} removed",
        f"- knee drift: {comparison.knee_drift:.4f}",
        "",
        _markdown_table(
            ("metric", f"A ({comparison.run_a})", f"B ({comparison.run_b})"),
            rows,
        ),
    ]
    return "\n".join(lines) + "\n"
