"""SEGA-DCIM reproduction: DSE-guided automatic digital CIM compiler.

Reproduction of *SEGA-DCIM: Design Space Exploration-Guided Automatic
Digital CIM Compiler with Multiple Precision Support* (DATE 2025).

Quickstart::

    from repro import SegaDcim, DcimSpec

    compiler = SegaDcim()
    result = compiler.compile(DcimSpec(wstore=8 * 1024, precision="INT8"))
    print(result.summary())
"""

from repro.core import (
    DcimSpec,
    DesignPoint,
    Precision,
    STANDARD_PRECISIONS,
    parse_precision,
)
from repro.core.compiler import CompilationResult, SegaDcim
from repro.dse import NSGA2Config, Requirements
from repro.model import MacroCost, MacroMetrics, evaluate_macro
from repro.tech import GENERIC28, CellLibrary, Technology

__all__ = [
    "SegaDcim",
    "CompilationResult",
    "DcimSpec",
    "DesignPoint",
    "Precision",
    "parse_precision",
    "STANDARD_PRECISIONS",
    "Requirements",
    "NSGA2Config",
    "MacroCost",
    "MacroMetrics",
    "evaluate_macro",
    "CellLibrary",
    "Technology",
    "GENERIC28",
]

__version__ = "1.0.0"
