"""Command-line interface for the SEGA-DCIM compiler.

Usage (also via ``python -m repro``)::

    repro precisions
    repro pdks
    repro explore --wstore 65536 --precision INT8 --limit 10
    repro compile --wstore 8192 --precision BF16 --out build/macro
    repro report  --precision INT8 --n 64 --h 128 --l 64 --k 8
    repro problems list
    repro campaign --spec 8192:INT8 --spec 8192:BF16 --cache build/evals.jsonl
    repro campaign --spec 8192:INT8 --cache build/evals.sqlite \\
                   --cache-flush-every 256
    repro cache stats build/evals.jsonl
    repro cache migrate build/evals.jsonl build/evals.sqlite
    repro campaign --problem mapping --spec tiny_cnn:INT8
    repro campaign --spec 8192:INT8 --store build/runs.sqlite --baseline main
    repro serve  --port 8000 --workers 2 --cache build/evals.jsonl
    repro serve  --store build/runs.sqlite --snapshot-every 30 \\
                 --rate-limit 5 --max-pending 32 --max-budget 100000
    repro dashboard --store build/runs.sqlite --out build/dashboard.html
    repro submit --url http://127.0.0.1:8000 --spec 8192:INT8 --watch
    repro watch  --url http://127.0.0.1:8000 job-1
    repro runs list --store build/runs.sqlite --limit 20 --offset 0
    repro runs compare run-abc run-def --store build/runs.sqlite
    repro trace list --store build/runs.sqlite
    repro trace show  trace-id --url http://127.0.0.1:8000
    repro trace export trace-id --store build/runs.sqlite --out build/t.json
"""

from __future__ import annotations

import argparse
import sys

from repro.core.precision import STANDARD_PRECISIONS, parse_precision
from repro.core.spec import DcimSpec, DesignPoint
from repro.reporting.tables import ascii_table, format_si
from repro.tech.corners import STANDARD_CORNERS, apply_corner
from repro.tech.pdk import available_pdks, load_pdk

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEGA-DCIM: DSE-guided automatic digital CIM compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("precisions", help="list supported precisions")

    sub.add_parser("pdks", help="list bundled PDKs and corners")

    def add_spec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--wstore", type=int, required=True,
                       help="number of stored weights (power of two)")
        p.add_argument("--precision", required=True,
                       help="computing precision, e.g. INT8 or BF16")
        p.add_argument("--pdk", default="generic28", help="technology node")
        p.add_argument("--corner", default="tt",
                       choices=sorted(STANDARD_CORNERS),
                       help="PVT corner")
        p.add_argument("--seed", type=int, default=0, help="GA seed")
        p.add_argument("--ga", action="store_true",
                       help="use NSGA-II instead of exhaustive enumeration")

    explore = sub.add_parser("explore", help="print the Pareto frontier")
    add_spec_args(explore)
    explore.add_argument("--limit", type=int, default=20,
                         help="max rows to print")

    compile_p = sub.add_parser("compile", help="run the full pipeline")
    add_spec_args(compile_p)
    compile_p.add_argument("--strategy", default="knee",
                           help="selection strategy (knee, min_area, ...)")
    compile_p.add_argument("--max-area", type=float, default=None,
                           help="distillation budget: layout area in mm2")
    compile_p.add_argument("--min-tops", type=float, default=None,
                           help="distillation budget: peak TOPS")
    compile_p.add_argument("--out", default=None,
                           help="write RTL/layout/report artifacts here")
    compile_p.add_argument("--verify", action="store_true",
                           help="run scaled gate-level verification")

    report = sub.add_parser("report", help="area/timing/power of one design")
    report.add_argument("--precision", required=True)
    report.add_argument("--n", type=int, required=True)
    report.add_argument("--h", type=int, required=True)
    report.add_argument("--l", type=int, required=True)
    report.add_argument("--k", type=int, required=True)
    report.add_argument("--pdk", default="generic28")
    report.add_argument("--corner", default="tt",
                        choices=sorted(STANDARD_CORNERS))

    lint = sub.add_parser("lint", help="lint generated Verilog files")
    lint.add_argument("paths", nargs="+", help="Verilog files to lint")

    sweep = sub.add_parser(
        "sweep", help="efficiency sweep over Wstore (Fig. 8 style)"
    )
    sweep.add_argument("--precision", required=True)
    sweep.add_argument("--wstores", default="4096,8192,16384,32768,65536",
                       help="comma-separated Wstore values")
    sweep.add_argument("--pdk", default="generic28")
    sweep.add_argument("--corner", default="tt",
                       choices=sorted(STANDARD_CORNERS))

    problems_p = sub.add_parser(
        "problems",
        help="inspect the registered optimisation problems",
    )
    problems_sub = problems_p.add_subparsers(dest="problems_command",
                                             required=True)
    problems_list = problems_sub.add_parser(
        "list", help="registered problems, their objectives and spec schema"
    )
    problems_list.add_argument("--json", action="store_true",
                               help="print the problem catalogue as JSON")

    cache_p = sub.add_parser(
        "cache",
        help="inspect and maintain persistent evaluation caches "
             "(stats/compact/migrate)",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts, tier sizes, and stale-line report"
    )
    cache_stats.add_argument("path", help="cache file (.jsonl or .sqlite)")
    cache_stats.add_argument("--json", action="store_true",
                             help="print the report as JSON")
    cache_compact = cache_sub.add_parser(
        "compact",
        help="rewrite the disk tier dropping stale duplicates "
             "(jsonl) or reclaiming free pages (sqlite VACUUM)",
    )
    cache_compact.add_argument("path", help="cache file (.jsonl or .sqlite)")
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="copy every entry into a new cache file, converting "
             "between tiers (e.g. evals.jsonl -> evals.sqlite)",
    )
    cache_migrate.add_argument("src", help="source cache file")
    cache_migrate.add_argument("dst", help="destination cache file "
                                           "(backend guessed from suffix)")
    cache_migrate.add_argument("--batch-size", type=int, default=1024,
                               metavar="N",
                               help="entries per put_many transaction")

    campaign = sub.add_parser(
        "campaign",
        help="explore many specs through the evaluation service and "
             "merge one cross-architecture frontier",
    )
    campaign.add_argument("--problem", default="dcim", metavar="NAME",
                          help="registered problem to optimise "
                               "(see 'repro problems list'; default dcim)")
    campaign.add_argument(
        "--spec", action="append", required=True, metavar="SPEC",
        help="one specification in the problem's CLI syntax, e.g. "
             "8192:INT8 (dcim) or tiny_cnn:INT8 (mapping); repeatable",
    )
    campaign.add_argument("--population", type=int, default=None,
                          help="NSGA-II population size (default: the "
                               "problem's own)")
    campaign.add_argument("--generations", type=int, default=None,
                          help="NSGA-II generations (default: the "
                               "problem's own)")
    campaign.add_argument("--seed", type=int, default=0, help="base GA seed")
    campaign.add_argument("--backend", default="serial",
                          choices=["serial", "thread", "process"],
                          help="genome-level evaluation backend")
    campaign.add_argument("--chunk-size", type=int, default=None,
                          metavar="N",
                          help="genomes per executor task (default: "
                               "auto-sized per batch)")
    campaign.add_argument("--engine", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="cost-engine backend (bit-identical "
                               "objectives either way)")
    campaign.add_argument("--ga-backend", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="GA kernel backend (bit-identical fronts "
                               "either way)")
    campaign.add_argument("--exhaustive-threshold", type=int, default=None,
                          metavar="N",
                          help="enumerate design spaces of up to N "
                               "genomes instead of running the GA "
                               "(0 always runs the GA; default 512)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="specs explored concurrently")
    campaign.add_argument("--cache", default=None, metavar="PATH",
                          help="persistent evaluation cache "
                               "(.jsonl or .sqlite; omit for in-memory)")
    campaign.add_argument("--cache-flush-every", type=int, default=None,
                          metavar="N",
                          help="write-behind: buffer cache misses and "
                               "flush them as one disk transaction per "
                               "N entries (flushed at campaign end, "
                               "even on failure; default: write-through)")
    campaign.add_argument("--pdk", default="generic28", help="technology node")
    campaign.add_argument("--corner", default="tt",
                          choices=sorted(STANDARD_CORNERS), help="PVT corner")
    campaign.add_argument("--limit", type=int, default=20,
                          help="max frontier rows to print")
    campaign.add_argument("--json", action="store_true",
                          help="print the CampaignResponse as JSON")
    campaign.add_argument("--store", default=None, metavar="PATH",
                          help="record the campaign into this run "
                               "registry (SQLite)")
    campaign.add_argument("--name", default=None, metavar="LABEL",
                          help="human label for the recorded run "
                               "(needs --store)")
    campaign.add_argument("--baseline", default=None, metavar="NAME",
                          help="gate the recorded run against this "
                               "baseline; seeds it on first use and "
                               "exits non-zero on regression "
                               "(needs --store)")
    campaign.add_argument("--set-baseline", default=None, metavar="NAME",
                          help="pin this run as the named baseline "
                               "after recording (needs --store)")

    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP campaign server (submit/poll/stream/cancel "
             "over a socket)",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument("--port", type=int, default=8000,
                         help="bind port (0 picks a free port)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="background campaign workers")
    serve_p.add_argument("--cache", default=None, metavar="PATH",
                         help="shared persistent evaluation cache "
                              "(.jsonl or .sqlite; omit for in-memory)")
    serve_p.add_argument("--cache-flush-every", type=int, default=None,
                         metavar="N",
                         help="write-behind: flush buffered cache "
                              "entries as one disk transaction per N "
                              "(default: write-through; buffered "
                              "entries also land on shutdown)")
    serve_p.add_argument("--store", default=None, metavar="PATH",
                         help="record every campaign into this run "
                              "registry (SQLite) and serve the "
                              "/api/runs endpoints")
    serve_p.add_argument("--ttl", type=float, default=None, metavar="S",
                         help="purge finished job records after S seconds")
    serve_p.add_argument("--buffer", type=int, default=256, metavar="N",
                         help="progress events retained per job")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log HTTP requests to stderr")
    serve_p.add_argument("--log-level", default="warning",
                         choices=["debug", "info", "warning", "error"],
                         help="structured JSON-lines log level on stderr")
    serve_p.add_argument("--rate-limit", type=float, default=None,
                         metavar="R/S",
                         help="admission control: sustained submissions "
                              "per second allowed per client")
    serve_p.add_argument("--burst", type=int, default=None, metavar="N",
                         help="admission control: token-bucket burst "
                              "capacity (default ceil(rate))")
    serve_p.add_argument("--max-pending", type=int, default=None,
                         metavar="N",
                         help="admission control: reject submissions "
                              "(429) once N campaigns are pending")
    serve_p.add_argument("--max-budget", type=int, default=None,
                         metavar="N",
                         help="admission control: reject requests (413) "
                              "whose specs x generations x population "
                              "exceeds N")
    serve_p.add_argument("--snapshot-every", type=float, default=None,
                         metavar="S",
                         help="sample /metrics into the run registry "
                              "every S seconds (needs --store; feeds "
                              "'repro dashboard')")
    serve_p.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="RATIO",
                         help="head-sample this fraction of new traces "
                              "(errored and slow traces are always "
                              "kept; default 1.0 = keep everything)")
    serve_p.add_argument("--trace-slow", type=float, default=None,
                         metavar="S",
                         help="always keep a trace whose longest span "
                              "is >= S seconds, even when sampled out")
    serve_p.add_argument("--no-trace", action="store_true",
                         help="disable request/campaign tracing")
    serve_p.add_argument("--workers-remote", action="store_true",
                         help="distributed mode: campaigns shard into "
                              "leasable work units drained by external "
                              "'repro worker' processes instead of "
                              "running in-process")
    serve_p.add_argument("--lease-ttl", type=float, default=None,
                         metavar="S",
                         help="with --workers-remote: work-unit lease "
                              "TTL; a unit whose worker stops "
                              "heartbeating for S seconds is requeued "
                              "(default 30)")
    serve_p.add_argument("--unit-attempts", type=int, default=None,
                         metavar="N",
                         help="with --workers-remote: lease a unit at "
                              "most N times before failing the "
                              "campaign (default 3)")

    worker_p = sub.add_parser(
        "worker",
        help="connect to a 'repro serve --workers-remote' coordinator "
             "and evaluate leased work units",
    )
    worker_p.add_argument("--url", default="http://127.0.0.1:8000",
                          help="coordinator base URL")
    worker_p.add_argument("--cache", default="remote", metavar="SPEC",
                          help="evaluation cache: 'remote' (default; "
                               "share the coordinator's dedup layer "
                               "over /api/cache), 'memory', 'none', or "
                               "a local cache file path")
    worker_p.add_argument("--worker-id", default=None, metavar="ID",
                          help="stable worker identity (default: "
                               "coordinator-assigned)")
    worker_p.add_argument("--poll", type=float, default=0.5, metavar="S",
                          help="idle sleep between lease attempts")
    worker_p.add_argument("--max-units", type=int, default=None,
                          metavar="N",
                          help="exit after completing N units")
    worker_p.add_argument("--exit-idle", type=float, default=None,
                          metavar="S",
                          help="exit after S seconds without leasing a "
                               "unit (default: run until interrupted)")
    worker_p.add_argument("--log-level", default="warning",
                          choices=["debug", "info", "warning", "error"],
                          help="structured JSON-lines log level on stderr")

    dashboard_p = sub.add_parser(
        "dashboard",
        help="render a static HTML operations dashboard from a run "
             "registry's metrics history",
    )
    dashboard_p.add_argument("--store", required=True, metavar="PATH",
                             help="run registry database (SQLite)")
    dashboard_p.add_argument("--out", default="build/dashboard.html",
                             metavar="PATH", help="output HTML file")
    dashboard_p.add_argument("--title", default="repro operations",
                             help="page heading")
    dashboard_p.add_argument("--history", type=int, default=500,
                             metavar="N",
                             help="most recent metrics snapshots charted")
    dashboard_p.add_argument("--runs", type=int, default=15, metavar="N",
                             help="rows in the recent-runs table")

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:8000",
                       help="campaign server base URL")

    submit_p = sub.add_parser(
        "submit", help="submit a campaign to a running server"
    )
    add_client_args(submit_p)
    submit_p.add_argument("--problem", default="dcim", metavar="NAME",
                          help="registered problem to optimise "
                               "(see 'repro problems list'; default dcim)")
    submit_p.add_argument(
        "--spec", action="append", required=True, metavar="SPEC",
        help="one specification in the problem's CLI syntax, e.g. "
             "8192:INT8 (dcim) or tiny_cnn:INT8 (mapping); repeatable",
    )
    submit_p.add_argument("--population", type=int, default=None,
                          help="NSGA-II population size (default: the "
                               "problem's own)")
    submit_p.add_argument("--generations", type=int, default=None,
                          help="NSGA-II generations (default: the "
                               "problem's own)")
    submit_p.add_argument("--seed", type=int, default=0, help="base GA seed")
    submit_p.add_argument("--backend", default="serial",
                          choices=["serial", "thread", "process"],
                          help="genome-level evaluation backend")
    submit_p.add_argument("--workers", type=int, default=1,
                          help="specs explored concurrently")
    submit_p.add_argument("--engine", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="cost-engine backend")
    submit_p.add_argument("--ga-backend", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="GA kernel backend (bit-identical fronts "
                               "either way)")
    submit_p.add_argument("--exhaustive-threshold", type=int, default=None,
                          metavar="N",
                          help="enumerate design spaces of up to N "
                               "genomes instead of running the GA "
                               "(0 always runs the GA; default 512)")
    submit_p.add_argument("--watch", action="store_true",
                          help="stream progress events until the "
                               "campaign finishes")
    submit_p.add_argument("--json", action="store_true",
                          help="with --watch: print the final "
                               "CampaignResponse as JSON")

    watch_p = sub.add_parser(
        "watch", help="stream a submitted campaign's progress events"
    )
    add_client_args(watch_p)
    watch_p.add_argument("job_id", help="job id returned by submit")
    watch_p.add_argument("--cursor", type=int, default=0,
                         help="resume the event stream from this cursor")
    watch_p.add_argument("--json", action="store_true",
                         help="print events (and the result) as JSON lines")

    runs_p = sub.add_parser(
        "runs",
        help="inspect the persistent run registry (list/show/compare/"
             "export/gc/baseline/gate)",
    )
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)

    def add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", required=True, metavar="PATH",
                       help="run registry database (SQLite)")

    runs_list = runs_sub.add_parser("list", help="recorded runs, newest first")
    add_store_arg(runs_list)
    runs_list.add_argument("--limit", type=int, default=None,
                           help="max rows to print")
    runs_list.add_argument("--offset", type=int, default=0,
                           help="skip this many newest rows (page with "
                                "--limit)")
    runs_list.add_argument("--status", default=None,
                           choices=["done", "failed", "cancelled"],
                           help="only runs with this terminal status")
    runs_list.add_argument("--problem", default=None, metavar="NAME",
                           help="only runs of this registered problem")

    runs_show = runs_sub.add_parser(
        "show", help="one run's record and recorded frontier"
    )
    add_store_arg(runs_show)
    runs_show.add_argument("run", help="run id, baseline name, or run name")

    runs_compare = runs_sub.add_parser(
        "compare",
        help="front-quality indicators (hypervolume, epsilon, coverage, "
             "diff, knee drift) between two recorded runs",
    )
    add_store_arg(runs_compare)
    runs_compare.add_argument("a", help="reference run (id/baseline/name)")
    runs_compare.add_argument("b", help="candidate run (id/baseline/name)")
    runs_compare.add_argument("--json", action="store_true",
                              help="print the comparison as JSON")

    runs_export = runs_sub.add_parser(
        "export", help="render one run as Markdown or CSV"
    )
    add_store_arg(runs_export)
    runs_export.add_argument("run", help="run id, baseline name, or run name")
    runs_export.add_argument("--format", default="md", choices=["md", "csv"],
                             help="report format")
    runs_export.add_argument("--out", default=None, metavar="PATH",
                             help="write here instead of stdout")

    runs_gc = runs_sub.add_parser(
        "gc",
        help="delete old runs and prune observability history "
             "(baseline-pinned runs are kept)",
    )
    add_store_arg(runs_gc)
    runs_gc.add_argument("--keep", type=int, default=None, metavar="N",
                         help="retain the N newest runs")
    runs_gc.add_argument("--older-than", type=float, default=None,
                         metavar="SECONDS",
                         help="only delete runs older than this")
    runs_gc.add_argument("--keep-traces", type=float, default=None,
                         metavar="SECONDS",
                         help="prune trace spans started more than this "
                              "many seconds ago")
    runs_gc.add_argument("--keep-snapshots", type=float, default=None,
                         metavar="SECONDS",
                         help="prune metrics snapshots sampled more "
                              "than this many seconds ago")

    runs_baseline = runs_sub.add_parser(
        "baseline", help="pin or show a named baseline"
    )
    add_store_arg(runs_baseline)
    runs_baseline.add_argument("name", help="baseline name")
    runs_baseline.add_argument("run", nargs="?", default=None,
                               help="run to pin (omit to show the "
                                    "current pin)")

    runs_gate = runs_sub.add_parser(
        "gate",
        help="regression-gate a run against a baseline (exit 1 when "
             "front quality degraded beyond tolerance)",
    )
    add_store_arg(runs_gate)
    runs_gate.add_argument("candidate", help="run id, baseline name, or "
                                             "run name to check")
    runs_gate.add_argument("--baseline", required=True, metavar="NAME",
                           help="baseline to compare against")
    runs_gate.add_argument("--max-hv-drop", type=float, default=0.05,
                           metavar="FRAC",
                           help="allowed relative hypervolume loss")
    runs_gate.add_argument("--max-epsilon", type=float, default=0.05,
                           metavar="EPS",
                           help="allowed additive epsilon-indicator")
    runs_gate.add_argument("--min-front-ratio", type=float, default=0.5,
                           metavar="FRAC",
                           help="candidate front size floor, as a "
                                "fraction of the baseline's")
    runs_gate.add_argument("--json", action="store_true",
                           help="print the gate report as JSON")

    trace_p = sub.add_parser(
        "trace",
        help="inspect end-to-end traces (list/show/export) from a run "
             "registry or a running server",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    def add_trace_source_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=None, metavar="PATH",
                       help="read persisted traces from this run "
                            "registry (SQLite)")
        p.add_argument("--url", default=None, metavar="URL",
                       help="read traces from this campaign server "
                            "(e.g. http://127.0.0.1:8000)")

    trace_list = trace_sub.add_parser(
        "list", help="finished traces, newest first"
    )
    add_trace_source_args(trace_list)
    trace_list.add_argument("--limit", type=int, default=20,
                            help="max rows to print")
    trace_list.add_argument("--run", default=None, metavar="RUN_ID",
                            help="only traces linked to this run")
    trace_list.add_argument("--json", action="store_true",
                            help="print trace summaries as JSON")

    trace_show = trace_sub.add_parser(
        "show", help="one trace as an ascii span tree"
    )
    add_trace_source_args(trace_show)
    trace_show.add_argument("trace_id", help="trace id (from 'trace list')")
    trace_show.add_argument("--json", action="store_true",
                            help="print the trace's spans as JSON")

    trace_export = trace_sub.add_parser(
        "export",
        help="export one trace as Chrome trace-event JSON "
             "(open in ui.perfetto.dev or chrome://tracing)",
    )
    add_trace_source_args(trace_export)
    trace_export.add_argument("trace_id", help="trace id (from 'trace list')")
    trace_export.add_argument("--out", default=None, metavar="PATH",
                              help="write here instead of stdout")

    mc = sub.add_parser("mc", help="Monte-Carlo variation of one design")
    mc.add_argument("--precision", required=True)
    mc.add_argument("--n", type=int, required=True)
    mc.add_argument("--h", type=int, required=True)
    mc.add_argument("--l", type=int, required=True)
    mc.add_argument("--k", type=int, required=True)
    mc.add_argument("--samples", type=int, default=500)
    mc.add_argument("--pdk", default="generic28")
    mc.add_argument("--corner", default="tt",
                    choices=sorted(STANDARD_CORNERS))
    return parser


def _tech(args) -> object:
    return apply_corner(load_pdk(args.pdk), args.corner)


def _cmd_precisions() -> int:
    rows = []
    for p in STANDARD_PRECISIONS.values():
        rows.append(
            (p.name, p.kind, p.bits, p.exponent_bits or "-",
             p.mantissa_bits or "-")
        )
    print(ascii_table(["name", "kind", "bits", "BE", "BM"], rows))
    return 0


def _cmd_pdks() -> int:
    rows = []
    for name in available_pdks():
        tech = load_pdk(name)
        rows.append(
            (name, f"{tech.node_nm:g}", tech.gate_area_um2,
             tech.gate_delay_ps, tech.gate_energy_fj)
        )
    print(ascii_table(["pdk", "node nm", "gate um2", "gate ps", "gate fJ"], rows))
    print(f"corners: {', '.join(sorted(STANDARD_CORNERS))}")
    return 0


def _cmd_explore(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.dse.distill import distill

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    spec = DcimSpec(wstore=args.wstore, precision=args.precision)
    result = compiler.explore(spec, seed=args.seed, exhaustive=not args.ga)
    pairs = distill(result.points, tech)
    rows = [
        (
            p.n, p.h, p.l, p.k,
            f"{m.layout_area_mm2:.3f}", f"{m.delay_ns:.2f}",
            f"{m.tops:.2f}", f"{m.tops_per_watt:.1f}",
        )
        for p, m in pairs[: args.limit]
    ]
    print(
        f"Pareto frontier for Wstore={format_si(spec.wstore)} "
        f"{spec.precision.name} ({len(pairs)} designs, showing "
        f"{len(rows)}):"
    )
    print(
        ascii_table(
            ["N", "H", "L", "k", "area mm2", "delay ns", "TOPS", "TOPS/W"],
            rows,
        )
    )
    return 0


def _cmd_compile(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.core.manifest import write_artifacts
    from repro.dse.distill import Requirements

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    spec = DcimSpec(wstore=args.wstore, precision=args.precision)
    requirements = Requirements(
        max_area_mm2=args.max_area, min_tops=args.min_tops
    )
    try:
        result = compiler.compile(
            spec,
            requirements=requirements,
            strategy=args.strategy,
            seed=args.seed,
            exhaustive=not args.ga,
            verify=args.verify,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.summary())
    if args.verify:
        print(f"verification: {result.verification}")
    if args.out:
        manifest = write_artifacts(result, args.out, tech)
        print(f"artifacts written to {manifest.parent} (manifest.json)")
    return 0


def _cmd_report(args) -> int:
    from repro.reporting.power import full_report

    tech = _tech(args)
    try:
        design = DesignPoint(
            precision=parse_precision(args.precision),
            n=args.n, h=args.h, l=args.l, k=args.k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(design.describe())
    print(full_report(design.macro_cost(), tech))
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.rtl.lint import lint_source

    source = "\n".join(Path(p).read_text() for p in args.paths)
    report = lint_source(source)
    if report.passed:
        print(f"lint: CLEAN ({len(report.modules)} modules)")
        return 0
    for error in report.errors:
        print(f"lint error: {error}", file=sys.stderr)
    return 1


def _cmd_sweep(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.dse.distill import distill

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    precision = parse_precision(args.precision)
    rows = []
    for wstore_text in args.wstores.split(","):
        wstore = int(wstore_text)
        spec = DcimSpec(wstore=wstore, precision=precision)
        pairs = distill(
            compiler.explore(spec, exhaustive=True).points, tech
        )
        # Densest full-rate pick (the Fig. 8 design-A analogue).
        full_rate = [(p, m) for p, m in pairs if p.k == precision.input_bits]
        max_l = max(p.l for p, _ in full_rate)
        point, metrics = min(
            ((p, m) for p, m in full_rate if p.l == max_l),
            key=lambda pm: pm[1].layout_area_mm2,
        )
        rows.append(
            (
                format_si(wstore),
                f"N={point.n} H={point.h} L={point.l} k={point.k}",
                f"{metrics.tops_per_watt:.1f}",
                f"{metrics.tops_per_mm2:.2f}",
                f"{metrics.layout_area_mm2:.3f}",
            )
        )
    print(ascii_table(
        ["Wstore", "design", "TOPS/W", "TOPS/mm2", "area mm2"], rows
    ))
    return 0


def _cmd_problems(args) -> int:
    from repro.problems import problem_catalog

    catalogue = problem_catalog()
    if args.json:
        import json as _json

        print(_json.dumps({"problems": catalogue}, sort_keys=True))
        return 0
    rows = [
        (
            entry["name"],
            entry["title"],
            ", ".join(entry["objectives"]),
            f"{entry['defaults']['population_size']}"
            f"x{entry['defaults']['generations']}",
            ", ".join(
                name + ("" if detail["required"] else "?")
                for name, detail in entry["spec_schema"].items()
            ),
        )
        for entry in catalogue
    ]
    print(ascii_table(
        ["problem", "title", "objectives", "pop x gen", "spec fields"], rows
    ))
    return 0


def _apply_tech_flags(spec_request, args):
    """Thread ``--pdk``/``--corner`` into specs that carry them.

    The dcim spec has no technology fields (its normalised objectives
    are tech-free; physical units are attached at render time), but
    problems like ``mapping`` compute physical objectives and must see
    the CLI's technology choice rather than silently using their spec
    defaults.
    """
    import dataclasses

    fields = {f.name for f in dataclasses.fields(type(spec_request))}
    updates = {}
    if "pdk" in fields:
        updates["pdk"] = args.pdk
    if "corner" in fields:
        updates["corner"] = args.corner
    if not updates:
        return spec_request
    return dataclasses.replace(spec_request, **updates)


def _resolve_ga_sizing(args, definition) -> tuple[int, int]:
    """CLI GA sizing, falling back to the problem's own defaults."""
    population = (
        args.population
        if args.population is not None
        else definition.sizing.population_size
    )
    generations = (
        args.generations
        if args.generations is not None
        else definition.sizing.generations
    )
    return population, generations


def _cmd_cache(args) -> int:
    from pathlib import Path

    from repro.service import EvaluationCache

    # Every cache subcommand reads an existing file; opening a typo'd
    # path would silently create an empty cache (matching `repro runs`).
    if not Path(args.path if args.cache_command != "migrate" else args.src).exists():
        missing = args.path if args.cache_command != "migrate" else args.src
        print(f"error: no evaluation cache at {missing}", file=sys.stderr)
        return 1

    if args.cache_command == "stats":
        with EvaluationCache(args.path) as cache:
            info = cache.info()
        if args.json:
            import json as _json

            print(_json.dumps(info, sort_keys=True))
            return 0
        rows = [
            ("backend", info["backend"]),
            ("entries", info["entries"]),
            ("disk bytes", info.get("disk_bytes", "-")),
            ("memory entries", info["memory_entries"]),
            ("pending writes", info["pending_writes"]),
            ("hit rate", f"{info['stats']['hit_rate']:.1%}"),
        ]
        if "log_lines" in info:
            rows.append(("log lines", info["log_lines"]))
            rows.append(("stale lines", info["stale_lines"]))
        print(ascii_table(["property", "value"], rows))
        return 0

    if args.cache_command == "compact":
        with EvaluationCache(args.path) as cache:
            report = cache.compact()
            entries = len(cache)
        if report["backend"] == "jsonl":
            print(
                f"compacted {args.path}: {report['lines_before']} -> "
                f"{report['lines_after']} lines "
                f"({report['bytes_before']} -> {report['bytes_after']} "
                f"bytes), {entries} entries"
            )
        else:
            print(
                f"vacuumed {args.path}: {report['bytes_before']} -> "
                f"{report['bytes_after']} bytes, {entries} entries"
            )
        return 0

    if args.cache_command == "migrate":
        if Path(args.dst).resolve() == Path(args.src).resolve():
            print("error: migrate needs distinct src and dst paths",
                  file=sys.stderr)
            return 1
        with EvaluationCache(args.src) as src:
            entries = src.items()
            with EvaluationCache(args.dst) as dst:
                for start in range(0, len(entries), args.batch_size):
                    dst.put_many(dict(entries[start:start + args.batch_size]))
                migrated = len(dst)
            print(
                f"migrated {len(entries)} entries: {args.src} "
                f"[{src.backend}] -> {args.dst} ({migrated} stored)"
            )
        return 0

    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_campaign(args) -> int:
    from repro.dse.nsga2 import NSGA2Config
    from repro.problems import get_problem
    from repro.service import CampaignConfig, EvaluationCache, run_campaign

    try:
        definition = get_problem(args.problem)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    try:
        spec_requests = [
            _apply_tech_flags(definition.parse_cli_spec(text), args)
            for text in args.spec
        ]
        specs = [definition.to_spec(request) for request in spec_requests]
        population, generations = _resolve_ga_sizing(args, definition)
        # None keeps CampaignConfig's default threshold; an explicit
        # value (including 0 = always GA) overrides it.
        threshold = {}
        if args.exhaustive_threshold is not None:
            threshold["exhaustive_threshold"] = args.exhaustive_threshold
        config = CampaignConfig(
            nsga2=NSGA2Config(
                population_size=population,
                generations=generations,
                backend=args.ga_backend,
            ),
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            chunk_size=args.chunk_size,
            engine=args.engine,
            problem=args.problem,
            cache_flush_every=args.cache_flush_every,
            **threshold,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.store is None and (args.name or args.baseline or args.set_baseline):
        print("error: --name/--baseline/--set-baseline need --store",
              file=sys.stderr)
        return 1
    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    cache = EvaluationCache(args.cache) if args.cache else EvaluationCache()
    tech = _tech(args)
    try:
        try:
            result = run_campaign(
                specs, config, cache=cache, store=store, run_name=args.name
            )
        except ValueError as exc:  # e.g. a spec the genome codec rejects
            print(f"error: {exc}", file=sys.stderr)
            return 1
        response = result.to_response()
        if args.json:
            print(response.to_json())
            return _campaign_registry_epilogue(args, store, result)
        # The default problem keeps its physical-units table: deriving
        # mm2/ns/TOPS needs the CLI's --pdk/--corner technology context,
        # which generic definitions deliberately know nothing about.
        # Every other registered problem renders through its
        # definition's point_columns/point_row.
        if args.problem == "dcim":
            headers = ["prec", "N", "H", "L", "k", "area mm2", "delay ns",
                       "TOPS", "TOPS/W"]
            rows = []
            for point in result.merged_points[: args.limit]:
                m = point.metrics(tech)
                rows.append(
                    (
                        point.precision.name, point.n, point.h, point.l,
                        point.k,
                        f"{m.layout_area_mm2:.3f}", f"{m.delay_ns:.2f}",
                        f"{m.tops:.2f}", f"{m.tops_per_watt:.1f}",
                    )
                )
            spec_names = ", ".join(
                f"{format_si(s.wstore)}:{s.precision.name}" for s in specs
            )
        else:
            headers = list(definition.point_columns())
            rows = [
                definition.point_row(point, tuple(objectives))
                for point, objectives in zip(
                    result.merged_points[: args.limit],
                    result.merged_objectives[: args.limit],
                )
            ]
            spec_names = ", ".join(definition.spec_label(s) for s in specs)
        print(
            f"Merged {args.problem} frontier over {len(specs)} specs "
            f"({spec_names}): "
            f"{len(result.merged_points)} designs, showing {len(rows)}"
        )
        print(ascii_table(headers, rows))
        stats = result.cache_stats
        chunk_text = "auto" if args.chunk_size is None else str(args.chunk_size)
        print(
            f"engine: {result.engine_backend} "
            f"(requested {args.engine}); "
            f"executor: {args.backend}, chunk size {chunk_text}"
        )
        strategy_text = ", ".join(
            f"{definition.spec_label(spec)}={strategy}"
            for spec, strategy in zip(specs, result.strategies)
        )
        print(
            f"strategy: {strategy_text}; "
            f"ga kernels: {result.ga_backend} (requested {args.ga_backend})"
        )
        print(
            f"evaluations: {result.evaluations} unique genomes "
            f"({', '.join(f'{r.evaluations}' for r in result.results)} per spec), "
            f"{result.fresh_evaluations} computed fresh; "
            f"wall time {result.wall_time_s:.2f} s"
        )
        if stats is not None:
            print(
                f"cache[{cache.backend}]: {stats.hits} hits / {stats.misses} "
                f"misses (hit rate {stats.hit_rate:.1%}), "
                f"{len(cache)} entries stored"
            )
        return _campaign_registry_epilogue(args, store, result)
    finally:
        cache.close()
        if store is not None:
            store.close()


def _campaign_registry_epilogue(args, store, result) -> int:
    """Post-campaign registry work: announce, pin, and gate the run.

    Returns the process exit code: 0 normally, 1 when a ``--baseline``
    gate found a regression.
    """
    if store is None:
        return 0
    if result.run_id is None:  # write failed (warned by run_campaign)
        print(f"error: campaign finished but recording into "
              f"{args.store} failed", file=sys.stderr)
        return 1
    print(f"recorded {result.run_id} in {args.store}", file=sys.stderr)
    if args.set_baseline:
        store.set_baseline(args.set_baseline, result.run_id)
        print(f"baseline {args.set_baseline!r} -> {result.run_id}",
              file=sys.stderr)
    if not args.baseline:
        return 0
    from repro.store import check_regression

    try:
        store.get_baseline(args.baseline)
    except KeyError:
        # First use seeds the baseline with this very run.
        store.set_baseline(args.baseline, result.run_id)
        print(f"baseline {args.baseline!r} seeded with {result.run_id}",
              file=sys.stderr)
        return 0
    try:
        report = check_regression(store, result.run_id, args.baseline)
    except ValueError as exc:
        # e.g. the named baseline pins a run of a different problem —
        # the registry refuses cross-problem comparison.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.describe(), file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_serve(args) -> int:
    from repro import obs
    from repro.service import EvaluationCache, serve

    obs.configure(level=args.log_level)
    if args.snapshot_every is not None and not args.store:
        print("error: --snapshot-every needs --store", file=sys.stderr)
        return 1
    cache = (
        EvaluationCache(args.cache, flush_every=args.cache_flush_every)
        if args.cache
        else EvaluationCache()
    )
    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    admission = None
    policy = obs.AdmissionPolicy(
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_pending=args.max_pending,
        max_budget=args.max_budget,
    )
    if policy.enabled:
        admission = obs.AdmissionController(policy)
    if args.no_trace:
        tracer = obs.NULL_TRACER
    else:
        try:
            tracer = obs.Tracer(
                sample_ratio=args.trace_sample,
                slow_threshold_s=args.trace_slow,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if store is not None:
            # Persist every kept trace so `repro trace`/the dashboard
            # can read it after the server (or its ring) is gone.
            trace_source = obs.normalize_source("serve")
            tracer.add_sink(
                lambda record: store.append_trace_spans(
                    obs.spans_to_dicts(record.spans), source=trace_source
                )
            )
    # The campaign/cache/executor layers trace through the process
    # global; the server additionally serves /api/traces from it.
    obs.set_tracer(tracer)
    coordinator = None
    if args.workers_remote:
        from repro.service.distributed import WorkCoordinator

        coordinator = WorkCoordinator(
            lease_ttl_s=(
                args.lease_ttl if args.lease_ttl is not None else 30.0
            ),
            max_attempts=(
                args.unit_attempts if args.unit_attempts is not None else 3
            ),
        )
    elif args.lease_ttl is not None or args.unit_attempts is not None:
        print("error: --lease-ttl/--unit-attempts need --workers-remote",
              file=sys.stderr)
        return 1
    server = serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=cache,
        event_buffer_size=args.buffer,
        ttl_s=args.ttl,
        store=store,
        verbose=args.verbose,
        admission=admission,
        tracer=tracer,
        coordinator=coordinator,
    )
    snapshotter = None
    if args.snapshot_every is not None:
        snapshotter = obs.MetricsSnapshotter(
            store, interval_s=args.snapshot_every
        )
        snapshotter.start()
    # The bound port matters when --port 0 asked for an ephemeral one;
    # scripts parse this line (see scripts/smoke.sh).
    registry = f", registry {args.store}" if store is not None else ""
    pool = (
        "remote workers" if coordinator is not None
        else f"{args.workers} workers"
    )
    print(f"serving campaigns on {server.url} "
          f"({pool}, cache {cache.backend}{registry})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if snapshotter is not None:
            snapshotter.stop()
        server.shutdown()
        server.queue.close(wait=False)
        cache.close()
        if store is not None:
            store.close()
    return 0


def _cmd_worker(args) -> int:
    from repro import obs
    from repro.service.worker import CampaignWorker, worker_cache

    obs.configure(level=args.log_level)
    try:
        cache = worker_cache(args.cache, args.url)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    worker = CampaignWorker(
        args.url,
        cache=cache,
        worker_id=args.worker_id,
        poll_s=args.poll,
        max_units=args.max_units,
        exit_idle_s=args.exit_idle,
    )
    try:
        worker.run()
    except KeyboardInterrupt:
        worker.stop()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if cache is not None:
            cache.close()
    return 0


def _cmd_dashboard(args) -> int:
    from pathlib import Path

    from repro.reporting import write_dashboard
    from repro.store import RunStore

    # Rendering reads an existing registry; opening a typo'd path would
    # silently create an empty database (matching the runs commands).
    if not Path(args.store).exists():
        print(f"error: no run registry at {args.store}", file=sys.stderr)
        return 1
    with RunStore(args.store) as store:
        out = write_dashboard(
            store,
            args.out,
            title=args.title,
            history_limit=args.history,
            runs_limit=args.runs,
        )
    print(f"wrote dashboard to {out}")
    return 0


def _build_submit_request(args):
    from repro.problems import get_problem
    from repro.service import CampaignRequest

    definition = get_problem(args.problem)
    specs = tuple(definition.parse_cli_spec(text) for text in args.spec)
    population, generations = _resolve_ga_sizing(args, definition)
    return CampaignRequest(
        specs=specs,
        population_size=population,
        generations=generations,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        engine=args.engine,
        problem=args.problem,
        ga_backend=args.ga_backend,
        exhaustive_threshold=args.exhaustive_threshold,
    )


def _watch_job(client, job_id: str, cursor: int = 0, as_json: bool = False) -> int:
    """Stream events until the terminal one; print the outcome."""
    from repro.service.events import EventKind

    final = None
    for event in client.watch(job_id, cursor=cursor):
        print(event.to_json() if as_json else event.describe(), flush=True)
        final = event
    if final is None or final.kind is not EventKind.CAMPAIGN_DONE:
        return 1
    response = client.result(job_id)
    if as_json:
        print(response.to_json())
    else:
        print(
            f"{job_id}: {len(response.frontier)} frontier designs, "
            f"{response.evaluations} evaluations "
            f"({response.fresh_evaluations} fresh), "
            f"engine {response.engine_backend}"
        )
    return 0


def _cmd_submit(args) -> int:
    from repro.service import CampaignClient

    try:
        request = _build_submit_request(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    client = CampaignClient(args.url)
    try:
        job_id = client.submit(request)
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job_id} ({client.status(job_id)['status']})", flush=True)
    if not args.watch:
        return 0
    return _watch_job(client, job_id, as_json=args.json)


def _cmd_watch(args) -> int:
    from repro.service import CampaignClient

    client = CampaignClient(args.url)
    try:
        return _watch_job(client, args.job_id, cursor=args.cursor,
                          as_json=args.json)
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_runs(args) -> int:
    from pathlib import Path

    from repro.store import RunStore

    # Every runs subcommand reads an existing registry; opening a typo'd
    # path would silently create an empty database.
    if not Path(args.store).exists():
        print(f"error: no run registry at {args.store}", file=sys.stderr)
        return 1
    with RunStore(args.store) as store:
        try:
            return _run_registry_command(args, store)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1


def _run_registry_command(args, store) -> int:
    import time as _time

    if args.runs_command == "list":
        records = store.list_runs(
            limit=args.limit,
            status=args.status,
            offset=args.offset,
            problem=args.problem,
        )
        baselines = {run_id: name for name, run_id in store.baselines().items()}
        rows = [
            (
                r.run_id,
                r.name or "-",
                baselines.get(r.run_id, "-"),
                r.problem,
                r.status,
                ", ".join(r.specs),
                r.front_size,
                r.evaluations,
                f"{r.wall_time_s:.2f}",
                f"{max(0.0, _time.time() - r.created_at):.0f}s",
            )
            for r in records
        ]
        print(ascii_table(
            ["run", "name", "baseline", "problem", "status", "specs",
             "front", "evals", "wall s", "age"],
            rows,
        ))
        shown = f"{len(records)} runs shown ({len(store)} recorded)"
        if args.offset:
            shown += f", offset {args.offset}"
        print(shown)
        return 0

    if args.runs_command == "show":
        from repro.problems import get_problem
        from repro.reporting.runs import front_columns, front_rows

        record = store.resolve(args.run)
        print(record.describe())
        if record.ga_backend:
            print(f"ga kernels: {record.ga_backend}")
        front = store.front(record.run_id)
        try:
            legend = " ".join(get_problem(record.problem).objectives)
        except KeyError:  # recorded by a problem not registered here
            legend = "per-problem order"
        headers = list(front_columns(front))
        headers[-1] = f"objectives [{legend}]"
        print(ascii_table(headers, front_rows(front, precision=4)))
        return 0

    if args.runs_command == "compare":
        import json as _json

        from repro.store import compare_runs

        comparison = compare_runs(store, args.a, args.b)
        if args.json:
            print(_json.dumps(comparison.to_dict(), sort_keys=True))
        else:
            print(comparison.describe())
        return 0

    if args.runs_command == "export":
        from repro.reporting.runs import run_report_csv, run_report_markdown

        record = store.resolve(args.run)
        front = store.front(record.run_id)
        text = (
            run_report_markdown(record, front)
            if args.format == "md"
            else run_report_csv(record, front)
        )
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text)
            print(f"wrote {args.format} report to {args.out}")
        else:
            print(text, end="")
        return 0

    if args.runs_command == "gc":
        if (
            args.keep is None
            and args.older_than is None
            and args.keep_traces is None
            and args.keep_snapshots is None
        ):
            print("error: gc needs --keep, --older-than, --keep-traces, "
                  "and/or --keep-snapshots",
                  file=sys.stderr)
            return 1
        if args.keep is not None or args.older_than is not None:
            deleted = store.gc(
                keep_last=args.keep, older_than_s=args.older_than
            )
            print(f"deleted {deleted} runs ({len(store)} kept)")
        if args.keep_snapshots is not None:
            pruned = store.prune_metrics_history(args.keep_snapshots)
            print(f"pruned {pruned} metrics snapshots")
        if args.keep_traces is not None:
            pruned = store.prune_trace_spans(args.keep_traces)
            print(f"pruned {pruned} trace spans")
        return 0

    if args.runs_command == "baseline":
        if args.run is not None:
            record = store.resolve(args.run)
            store.set_baseline(args.name, record.run_id)
            print(f"baseline {args.name!r} -> {record.run_id}")
        else:
            record = store.get_baseline(args.name)
            print(f"baseline {args.name!r} -> {record.describe()}")
        return 0

    if args.runs_command == "gate":
        from repro.store import GateConfig, check_regression

        config = GateConfig(
            max_hypervolume_drop=args.max_hv_drop,
            max_epsilon=args.max_epsilon,
            min_front_ratio=args.min_front_ratio,
        )
        report = check_regression(
            store, args.candidate, args.baseline, config
        )
        if args.json:
            import json as _json

            print(_json.dumps(report.to_dict(), sort_keys=True))
        else:
            print(report.describe())
        return 0 if report.passed else 1

    raise AssertionError(f"unhandled runs command {args.runs_command!r}")


def _trace_backend(args):
    """Resolve ``--store``/``--url`` into (summaries_fn, spans_fn).

    Exactly one source is required: the registry holds persisted
    traces, a running server additionally serves its in-memory ring.
    """
    if (args.store is None) == (args.url is None):
        raise ValueError("trace commands need exactly one of --store/--url")
    if args.store is not None:
        from pathlib import Path

        from repro.store import RunStore

        if not Path(args.store).exists():
            raise ValueError(f"no run registry at {args.store}")
        store = RunStore(args.store)

        def summaries(limit, run_id=None):
            return store.trace_list(limit=limit, run_id=run_id)

        return summaries, store.trace_spans, store.close
    from repro.service import CampaignClient

    client = CampaignClient(args.url)

    def summaries(limit, run_id=None):
        traces = client.traces(limit=limit)
        if run_id is not None:
            traces = [t for t in traces if t.get("run_id") == run_id]
        return traces

    def spans(trace_id):
        try:
            return client.trace(trace_id).get("spans", [])
        except RuntimeError as exc:
            if "404" in str(exc):
                return []
            raise

    return summaries, spans, lambda: None


def _cmd_trace(args) -> int:
    import json as _json
    import time as _time

    from repro.obs.trace import chrome_trace, trace_tree

    try:
        summaries, span_rows, close = _trace_backend(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.trace_command == "list":
            traces = summaries(args.limit, getattr(args, "run", None))
            if args.json:
                print(_json.dumps({"traces": traces}, sort_keys=True))
                return 0
            rows = [
                (
                    t["trace_id"],
                    t.get("name", ""),
                    t.get("status", "ok"),
                    t.get("span_count", "-"),
                    f"{t.get('duration_s', 0.0) * 1000.0:.1f}",
                    t.get("run_id") or "-",
                    f"{max(0.0, _time.time() - t.get('start_time', 0.0)):.0f}s",
                )
                for t in traces
            ]
            print(ascii_table(
                ["trace", "name", "status", "spans", "ms", "run", "age"],
                rows,
            ))
            print(f"{len(traces)} traces shown")
            return 0

        spans = span_rows(args.trace_id)
        if not spans:
            print(f"error: unknown trace id {args.trace_id!r}",
                  file=sys.stderr)
            return 1
        if args.trace_command == "show":
            if args.json:
                from repro.obs.trace import spans_to_dicts

                print(_json.dumps(
                    {"trace_id": args.trace_id,
                     "spans": spans_to_dicts(spans)},
                    sort_keys=True, default=str,
                ))
            else:
                print(trace_tree(spans))
            return 0
        if args.trace_command == "export":
            text = _json.dumps(chrome_trace(spans), default=str)
            if args.out:
                from pathlib import Path

                Path(args.out).parent.mkdir(parents=True, exist_ok=True)
                Path(args.out).write_text(text)
                print(f"wrote Chrome trace JSON to {args.out}")
            else:
                print(text)
            return 0
        raise AssertionError(
            f"unhandled trace command {args.trace_command!r}"
        )
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        close()


def _cmd_mc(args) -> int:
    from repro.model.variation import monte_carlo

    tech = _tech(args)
    try:
        design = DesignPoint(
            precision=parse_precision(args.precision),
            n=args.n, h=args.h, l=args.l, k=args.k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = monte_carlo(design, tech, samples=args.samples)
    rows = [(key, f"{value:.3f}") for key, value in result.summary().items()]
    print(design.describe())
    print(ascii_table(["statistic", "value"], rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "precisions":
        return _cmd_precisions()
    if args.command == "pdks":
        return _cmd_pdks()
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "problems":
        return _cmd_problems(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "mc":
        return _cmd_mc(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
