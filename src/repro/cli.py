"""Command-line interface for the SEGA-DCIM compiler.

Usage (also via ``python -m repro``)::

    repro precisions
    repro pdks
    repro explore --wstore 65536 --precision INT8 --limit 10
    repro compile --wstore 8192 --precision BF16 --out build/macro
    repro report  --precision INT8 --n 64 --h 128 --l 64 --k 8
    repro campaign --spec 8192:INT8 --spec 8192:BF16 --cache build/evals.jsonl
    repro serve  --port 8000 --workers 2 --cache build/evals.jsonl
    repro submit --url http://127.0.0.1:8000 --spec 8192:INT8 --watch
    repro watch  --url http://127.0.0.1:8000 job-1
"""

from __future__ import annotations

import argparse
import sys

from repro.core.precision import STANDARD_PRECISIONS, parse_precision
from repro.core.spec import DcimSpec, DesignPoint
from repro.reporting.tables import ascii_table, format_si
from repro.tech.corners import STANDARD_CORNERS, apply_corner
from repro.tech.pdk import available_pdks, load_pdk

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEGA-DCIM: DSE-guided automatic digital CIM compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("precisions", help="list supported precisions")

    sub.add_parser("pdks", help="list bundled PDKs and corners")

    def add_spec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--wstore", type=int, required=True,
                       help="number of stored weights (power of two)")
        p.add_argument("--precision", required=True,
                       help="computing precision, e.g. INT8 or BF16")
        p.add_argument("--pdk", default="generic28", help="technology node")
        p.add_argument("--corner", default="tt",
                       choices=sorted(STANDARD_CORNERS),
                       help="PVT corner")
        p.add_argument("--seed", type=int, default=0, help="GA seed")
        p.add_argument("--ga", action="store_true",
                       help="use NSGA-II instead of exhaustive enumeration")

    explore = sub.add_parser("explore", help="print the Pareto frontier")
    add_spec_args(explore)
    explore.add_argument("--limit", type=int, default=20,
                         help="max rows to print")

    compile_p = sub.add_parser("compile", help="run the full pipeline")
    add_spec_args(compile_p)
    compile_p.add_argument("--strategy", default="knee",
                           help="selection strategy (knee, min_area, ...)")
    compile_p.add_argument("--max-area", type=float, default=None,
                           help="distillation budget: layout area in mm2")
    compile_p.add_argument("--min-tops", type=float, default=None,
                           help="distillation budget: peak TOPS")
    compile_p.add_argument("--out", default=None,
                           help="write RTL/layout/report artifacts here")
    compile_p.add_argument("--verify", action="store_true",
                           help="run scaled gate-level verification")

    report = sub.add_parser("report", help="area/timing/power of one design")
    report.add_argument("--precision", required=True)
    report.add_argument("--n", type=int, required=True)
    report.add_argument("--h", type=int, required=True)
    report.add_argument("--l", type=int, required=True)
    report.add_argument("--k", type=int, required=True)
    report.add_argument("--pdk", default="generic28")
    report.add_argument("--corner", default="tt",
                        choices=sorted(STANDARD_CORNERS))

    lint = sub.add_parser("lint", help="lint generated Verilog files")
    lint.add_argument("paths", nargs="+", help="Verilog files to lint")

    sweep = sub.add_parser(
        "sweep", help="efficiency sweep over Wstore (Fig. 8 style)"
    )
    sweep.add_argument("--precision", required=True)
    sweep.add_argument("--wstores", default="4096,8192,16384,32768,65536",
                       help="comma-separated Wstore values")
    sweep.add_argument("--pdk", default="generic28")
    sweep.add_argument("--corner", default="tt",
                       choices=sorted(STANDARD_CORNERS))

    campaign = sub.add_parser(
        "campaign",
        help="explore many specs through the evaluation service and "
             "merge one cross-architecture frontier",
    )
    campaign.add_argument(
        "--spec", action="append", required=True, metavar="WSTORE:PRECISION",
        help="one specification, e.g. 8192:INT8 (repeatable)",
    )
    campaign.add_argument("--population", type=int, default=64,
                          help="NSGA-II population size")
    campaign.add_argument("--generations", type=int, default=60,
                          help="NSGA-II generations")
    campaign.add_argument("--seed", type=int, default=0, help="base GA seed")
    campaign.add_argument("--backend", default="serial",
                          choices=["serial", "thread", "process"],
                          help="genome-level evaluation backend")
    campaign.add_argument("--chunk-size", type=int, default=None,
                          metavar="N",
                          help="genomes per executor task (default: "
                               "auto-sized per batch)")
    campaign.add_argument("--engine", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="cost-engine backend (bit-identical "
                               "objectives either way)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="specs explored concurrently")
    campaign.add_argument("--cache", default=None, metavar="PATH",
                          help="persistent evaluation cache "
                               "(.jsonl or .sqlite; omit for in-memory)")
    campaign.add_argument("--pdk", default="generic28", help="technology node")
    campaign.add_argument("--corner", default="tt",
                          choices=sorted(STANDARD_CORNERS), help="PVT corner")
    campaign.add_argument("--limit", type=int, default=20,
                          help="max frontier rows to print")
    campaign.add_argument("--json", action="store_true",
                          help="print the CampaignResponse as JSON")

    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP campaign server (submit/poll/stream/cancel "
             "over a socket)",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument("--port", type=int, default=8000,
                         help="bind port (0 picks a free port)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="background campaign workers")
    serve_p.add_argument("--cache", default=None, metavar="PATH",
                         help="shared persistent evaluation cache "
                              "(.jsonl or .sqlite; omit for in-memory)")
    serve_p.add_argument("--ttl", type=float, default=None, metavar="S",
                         help="purge finished job records after S seconds")
    serve_p.add_argument("--buffer", type=int, default=256, metavar="N",
                         help="progress events retained per job")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log HTTP requests to stderr")

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:8000",
                       help="campaign server base URL")

    submit_p = sub.add_parser(
        "submit", help="submit a campaign to a running server"
    )
    add_client_args(submit_p)
    submit_p.add_argument(
        "--spec", action="append", required=True, metavar="WSTORE:PRECISION",
        help="one specification, e.g. 8192:INT8 (repeatable)",
    )
    submit_p.add_argument("--population", type=int, default=64,
                          help="NSGA-II population size")
    submit_p.add_argument("--generations", type=int, default=60,
                          help="NSGA-II generations")
    submit_p.add_argument("--seed", type=int, default=0, help="base GA seed")
    submit_p.add_argument("--backend", default="serial",
                          choices=["serial", "thread", "process"],
                          help="genome-level evaluation backend")
    submit_p.add_argument("--workers", type=int, default=1,
                          help="specs explored concurrently")
    submit_p.add_argument("--engine", default="auto",
                          choices=["auto", "numpy", "python"],
                          help="cost-engine backend")
    submit_p.add_argument("--watch", action="store_true",
                          help="stream progress events until the "
                               "campaign finishes")
    submit_p.add_argument("--json", action="store_true",
                          help="with --watch: print the final "
                               "CampaignResponse as JSON")

    watch_p = sub.add_parser(
        "watch", help="stream a submitted campaign's progress events"
    )
    add_client_args(watch_p)
    watch_p.add_argument("job_id", help="job id returned by submit")
    watch_p.add_argument("--cursor", type=int, default=0,
                         help="resume the event stream from this cursor")
    watch_p.add_argument("--json", action="store_true",
                         help="print events (and the result) as JSON lines")

    mc = sub.add_parser("mc", help="Monte-Carlo variation of one design")
    mc.add_argument("--precision", required=True)
    mc.add_argument("--n", type=int, required=True)
    mc.add_argument("--h", type=int, required=True)
    mc.add_argument("--l", type=int, required=True)
    mc.add_argument("--k", type=int, required=True)
    mc.add_argument("--samples", type=int, default=500)
    mc.add_argument("--pdk", default="generic28")
    mc.add_argument("--corner", default="tt",
                    choices=sorted(STANDARD_CORNERS))
    return parser


def _tech(args) -> object:
    return apply_corner(load_pdk(args.pdk), args.corner)


def _cmd_precisions() -> int:
    rows = []
    for p in STANDARD_PRECISIONS.values():
        rows.append(
            (p.name, p.kind, p.bits, p.exponent_bits or "-",
             p.mantissa_bits or "-")
        )
    print(ascii_table(["name", "kind", "bits", "BE", "BM"], rows))
    return 0


def _cmd_pdks() -> int:
    rows = []
    for name in available_pdks():
        tech = load_pdk(name)
        rows.append(
            (name, f"{tech.node_nm:g}", tech.gate_area_um2,
             tech.gate_delay_ps, tech.gate_energy_fj)
        )
    print(ascii_table(["pdk", "node nm", "gate um2", "gate ps", "gate fJ"], rows))
    print(f"corners: {', '.join(sorted(STANDARD_CORNERS))}")
    return 0


def _cmd_explore(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.dse.distill import distill

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    spec = DcimSpec(wstore=args.wstore, precision=args.precision)
    result = compiler.explore(spec, seed=args.seed, exhaustive=not args.ga)
    pairs = distill(result.points, tech)
    rows = [
        (
            p.n, p.h, p.l, p.k,
            f"{m.layout_area_mm2:.3f}", f"{m.delay_ns:.2f}",
            f"{m.tops:.2f}", f"{m.tops_per_watt:.1f}",
        )
        for p, m in pairs[: args.limit]
    ]
    print(
        f"Pareto frontier for Wstore={format_si(spec.wstore)} "
        f"{spec.precision.name} ({len(pairs)} designs, showing "
        f"{len(rows)}):"
    )
    print(
        ascii_table(
            ["N", "H", "L", "k", "area mm2", "delay ns", "TOPS", "TOPS/W"],
            rows,
        )
    )
    return 0


def _cmd_compile(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.core.manifest import write_artifacts
    from repro.dse.distill import Requirements

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    spec = DcimSpec(wstore=args.wstore, precision=args.precision)
    requirements = Requirements(
        max_area_mm2=args.max_area, min_tops=args.min_tops
    )
    try:
        result = compiler.compile(
            spec,
            requirements=requirements,
            strategy=args.strategy,
            seed=args.seed,
            exhaustive=not args.ga,
            verify=args.verify,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.summary())
    if args.verify:
        print(f"verification: {result.verification}")
    if args.out:
        manifest = write_artifacts(result, args.out, tech)
        print(f"artifacts written to {manifest.parent} (manifest.json)")
    return 0


def _cmd_report(args) -> int:
    from repro.reporting.power import full_report

    tech = _tech(args)
    try:
        design = DesignPoint(
            precision=parse_precision(args.precision),
            n=args.n, h=args.h, l=args.l, k=args.k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(design.describe())
    print(full_report(design.macro_cost(), tech))
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.rtl.lint import lint_source

    source = "\n".join(Path(p).read_text() for p in args.paths)
    report = lint_source(source)
    if report.passed:
        print(f"lint: CLEAN ({len(report.modules)} modules)")
        return 0
    for error in report.errors:
        print(f"lint error: {error}", file=sys.stderr)
    return 1


def _cmd_sweep(args) -> int:
    from repro.core.compiler import SegaDcim
    from repro.dse.distill import distill

    tech = _tech(args)
    compiler = SegaDcim(tech=tech)
    precision = parse_precision(args.precision)
    rows = []
    for wstore_text in args.wstores.split(","):
        wstore = int(wstore_text)
        spec = DcimSpec(wstore=wstore, precision=precision)
        pairs = distill(
            compiler.explore(spec, exhaustive=True).points, tech
        )
        # Densest full-rate pick (the Fig. 8 design-A analogue).
        full_rate = [(p, m) for p, m in pairs if p.k == precision.input_bits]
        max_l = max(p.l for p, _ in full_rate)
        point, metrics = min(
            ((p, m) for p, m in full_rate if p.l == max_l),
            key=lambda pm: pm[1].layout_area_mm2,
        )
        rows.append(
            (
                format_si(wstore),
                f"N={point.n} H={point.h} L={point.l} k={point.k}",
                f"{metrics.tops_per_watt:.1f}",
                f"{metrics.tops_per_mm2:.2f}",
                f"{metrics.layout_area_mm2:.3f}",
            )
        )
    print(ascii_table(
        ["Wstore", "design", "TOPS/W", "TOPS/mm2", "area mm2"], rows
    ))
    return 0


def _parse_campaign_spec(text: str) -> DcimSpec:
    wstore_text, _, precision = text.partition(":")
    if not precision:
        raise ValueError(
            f"spec {text!r} must look like WSTORE:PRECISION (e.g. 8192:INT8)"
        )
    return DcimSpec(wstore=int(wstore_text), precision=precision)


def _cmd_campaign(args) -> int:
    from repro.dse.nsga2 import NSGA2Config
    from repro.service import CampaignConfig, EvaluationCache, run_campaign

    try:
        specs = [_parse_campaign_spec(text) for text in args.spec]
        config = CampaignConfig(
            nsga2=NSGA2Config(
                population_size=args.population, generations=args.generations
            ),
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            chunk_size=args.chunk_size,
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cache = EvaluationCache(args.cache) if args.cache else EvaluationCache()
    tech = _tech(args)
    try:
        try:
            result = run_campaign(specs, config, cache=cache)
        except ValueError as exc:  # e.g. a spec the genome codec rejects
            print(f"error: {exc}", file=sys.stderr)
            return 1
        response = result.to_response()
        if args.json:
            print(response.to_json())
            return 0
        rows = []
        for point in result.merged_points[: args.limit]:
            m = point.metrics(tech)
            rows.append(
                (
                    point.precision.name, point.n, point.h, point.l, point.k,
                    f"{m.layout_area_mm2:.3f}", f"{m.delay_ns:.2f}",
                    f"{m.tops:.2f}", f"{m.tops_per_watt:.1f}",
                )
            )
        spec_names = ", ".join(
            f"{format_si(s.wstore)}:{s.precision.name}" for s in specs
        )
        print(
            f"Merged frontier over {len(specs)} specs ({spec_names}): "
            f"{len(result.merged_points)} designs, showing {len(rows)}"
        )
        print(
            ascii_table(
                ["prec", "N", "H", "L", "k", "area mm2", "delay ns", "TOPS",
                 "TOPS/W"],
                rows,
            )
        )
        stats = result.cache_stats
        chunk_text = "auto" if args.chunk_size is None else str(args.chunk_size)
        print(
            f"engine: {result.engine_backend} "
            f"(requested {args.engine}); "
            f"executor: {args.backend}, chunk size {chunk_text}"
        )
        print(
            f"evaluations: {result.evaluations} unique genomes "
            f"({', '.join(f'{r.evaluations}' for r in result.results)} per spec), "
            f"{result.fresh_evaluations} computed fresh; "
            f"wall time {result.wall_time_s:.2f} s"
        )
        if stats is not None:
            print(
                f"cache[{cache.backend}]: {stats.hits} hits / {stats.misses} "
                f"misses (hit rate {stats.hit_rate:.1%}), "
                f"{len(cache)} entries stored"
            )
        return 0
    finally:
        cache.close()


def _cmd_serve(args) -> int:
    from repro.service import EvaluationCache, serve

    cache = EvaluationCache(args.cache) if args.cache else EvaluationCache()
    server = serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=cache,
        event_buffer_size=args.buffer,
        ttl_s=args.ttl,
        verbose=args.verbose,
    )
    # The bound port matters when --port 0 asked for an ephemeral one;
    # scripts parse this line (see scripts/smoke.sh).
    print(f"serving campaigns on {server.url} "
          f"({args.workers} workers, cache {cache.backend})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.queue.close(wait=False)
        cache.close()
    return 0


def _build_submit_request(args):
    from repro.service import CampaignRequest, SpecRequest

    specs = tuple(
        SpecRequest.from_spec(_parse_campaign_spec(text)) for text in args.spec
    )
    return CampaignRequest(
        specs=specs,
        population_size=args.population,
        generations=args.generations,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        engine=args.engine,
    )


def _watch_job(client, job_id: str, cursor: int = 0, as_json: bool = False) -> int:
    """Stream events until the terminal one; print the outcome."""
    from repro.service.events import EventKind

    final = None
    for event in client.watch(job_id, cursor=cursor):
        print(event.to_json() if as_json else event.describe(), flush=True)
        final = event
    if final is None or final.kind is not EventKind.CAMPAIGN_DONE:
        return 1
    response = client.result(job_id)
    if as_json:
        print(response.to_json())
    else:
        print(
            f"{job_id}: {len(response.frontier)} frontier designs, "
            f"{response.evaluations} evaluations "
            f"({response.fresh_evaluations} fresh), "
            f"engine {response.engine_backend}"
        )
    return 0


def _cmd_submit(args) -> int:
    from repro.service import CampaignClient

    try:
        request = _build_submit_request(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    client = CampaignClient(args.url)
    try:
        job_id = client.submit(request)
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job_id} ({client.status(job_id)['status']})", flush=True)
    if not args.watch:
        return 0
    return _watch_job(client, job_id, as_json=args.json)


def _cmd_watch(args) -> int:
    from repro.service import CampaignClient

    client = CampaignClient(args.url)
    try:
        return _watch_job(client, args.job_id, cursor=args.cursor,
                          as_json=args.json)
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_mc(args) -> int:
    from repro.model.variation import monte_carlo

    tech = _tech(args)
    try:
        design = DesignPoint(
            precision=parse_precision(args.precision),
            n=args.n, h=args.h, l=args.l, k=args.k,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = monte_carlo(design, tech, samples=args.samples)
    rows = [(key, f"{value:.3f}") for key, value in result.summary().items()]
    print(design.describe())
    print(ascii_table(["statistic", "value"], rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "precisions":
        return _cmd_precisions()
    if args.command == "pdks":
        return _cmd_pdks()
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "mc":
        return _cmd_mc(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
