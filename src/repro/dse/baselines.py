"""Baseline explorers for the DSE ablation studies.

The paper motivates NSGA-II by noting that "single-objective
optimization often introduces a fixed human experience that is not
suitable for multiple architectures and versatile user requirements"
(Section II-B).  These baselines make that claim measurable:

* :func:`random_search` — uniform sampling with the same evaluation
  budget,
* :func:`weighted_sum_search` — a sweep of scalarised single-objective
  searches (the "fixed human experience" approach): each weight vector
  is optimised greedily, and the union of winners forms the front.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.pareto import pareto_front
from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.problem import DcimProblem
from repro.tech.cells import CellLibrary

__all__ = ["random_search", "weighted_sum_search"]


def random_search(
    spec: DcimSpec,
    budget: int,
    seed: int = 0,
    library: CellLibrary | None = None,
) -> list[DesignPoint]:
    """Uniformly sample ``budget`` genomes; return their Pareto front."""
    problem = DcimProblem(spec, library or CellLibrary.default())
    rng = random.Random(seed)
    seen = set()
    genomes = []
    for _ in range(budget):
        genome = problem.sample(rng)
        if genome not in seen:
            seen.add(genome)
            genomes.append(genome)
    points = problem.codec.decode_batch(genomes)
    objectives = problem.evaluate_batch(genomes)
    return pareto_front(points, objectives)


def weighted_sum_search(
    spec: DcimSpec,
    n_weight_vectors: int = 8,
    samples_per_vector: int = 64,
    seed: int = 0,
    library: CellLibrary | None = None,
) -> list[DesignPoint]:
    """Scalarised single-objective sweep (the classic transformation).

    Each weight vector ``w`` (drawn from a Dirichlet-ish simplex grid)
    scores candidates by ``w . normalized_objectives`` and keeps the
    single best; the union of the per-vector winners is returned after
    a final dominance filter.  With few weight vectors this recovers
    only the convex, well-spread part of the front — the behaviour the
    paper argues against.
    """
    problem = DcimProblem(spec, library or CellLibrary.default())
    rng = random.Random(seed)
    # A shared candidate pool so every scalarisation sees the same
    # evaluations (isolates the selection rule, not the sampling).
    pool = []
    seen = set()
    for _ in range(samples_per_vector):
        genome = problem.sample(rng)
        if genome not in seen:
            seen.add(genome)
            pool.append(genome)
    obj_rows = problem.evaluate_batch(pool)
    objs = np.array(obj_rows)
    lo, hi = objs.min(axis=0), objs.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    unit = (objs - lo) / span

    np_rng = np.random.default_rng(seed)
    winners = []
    for i in range(n_weight_vectors):
        if i == 0:
            weights = np.full(objs.shape[1], 1.0 / objs.shape[1])
        else:
            raw = np_rng.exponential(size=objs.shape[1])
            weights = raw / raw.sum()
        best = int(np.argmin(unit @ weights))
        winners.append(pool[best])
    by_genome = dict(zip(pool, obj_rows))
    winner_genomes = list(dict.fromkeys(winners))
    points = problem.codec.decode_batch(winner_genomes)
    objectives = [by_genome[g] for g in winner_genomes]
    return pareto_front(points, objectives)
