"""NSGA-II, implemented from scratch (Deb et al., 2002).

The paper's design space explorer runs "a classic NSGA-II algorithm" per
architecture.  This module provides a self-contained integer-genome
NSGA-II with:

* fast non-dominated sorting,
* crowding-distance assignment,
* binary tournament selection on (rank, crowding),
* uniform crossover and random-step mutation followed by the problem's
  *repair* operator (keeping the storage constraint exact), and
* elitist (mu + lambda) environmental selection.

It is deliberately independent of DCIM specifics: anything implementing
the small :class:`Problem` protocol can be optimised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

__all__ = [
    "Problem",
    "BatchEvaluator",
    "Individual",
    "NSGA2Config",
    "NSGA2Result",
    "GenerationProgress",
    "ProgressObserver",
    "nsga2",
    "fast_non_dominated_sort",
    "crowding_distance",
]

Genome = tuple[int, ...]
INFINITY = float("inf")


class Problem(Protocol):
    """Minimal interface the optimiser needs."""

    def sample(self, rng: random.Random) -> Genome:
        """Draw a random feasible genome."""

    def repair(self, genome: Genome, rng: random.Random) -> Genome:
        """Project a genome back into the feasible set."""

    def evaluate(self, genome: Genome) -> tuple[float, ...]:
        """Minimised objective vector for a feasible genome."""

    def mutation_steps(self) -> Sequence[int]:
        """Per-gene maximum mutation step sizes."""

    def evaluate_batch(
        self, genomes: Sequence[Genome]
    ) -> Sequence[tuple[float, ...]]:
        """Objective vectors for many genomes, in input order.

        Optional hook: when present, the optimiser evaluates each
        generation's new genomes through one call; otherwise it maps
        :meth:`evaluate`.  :class:`repro.dse.problem.DcimProblem`
        vectorises this through the batch cost engine
        (:mod:`repro.model.engine`), so one call per generation is the
        hot path, not a convenience.
        """
        return [self.evaluate(genome) for genome in genomes]


@runtime_checkable
class BatchEvaluator(Protocol):
    """Optional injectable evaluator: one call per generation batch.

    Implementations (see :class:`repro.service.executor.ProblemEvaluator`)
    may serve genomes from a shared persistent cache and fan the rest
    out to thread/process pools.  Results must come back in input
    order, and evaluation must be a pure function of the genome so a
    cached run is bit-identical to an uncached one.
    """

    def evaluate_batch(
        self, genomes: Sequence[Genome]
    ) -> Sequence[tuple[float, ...]]:
        """Objective vectors for ``genomes``, in input order."""
        ...


@dataclass
class Individual:
    """A genome with its cached objectives and NSGA-II bookkeeping."""

    genome: Genome
    objectives: tuple[float, ...]
    rank: int = 0
    crowding: float = 0.0


@dataclass(frozen=True)
class NSGA2Config:
    """Hyper-parameters of the explorer.

    The defaults are sized so one (Wstore, precision) exploration runs in
    seconds (the paper quotes "within 30 minutes" on their server; our
    analytical models are much cheaper to evaluate).
    """

    population_size: int = 64
    generations: int = 60
    crossover_prob: float = 0.9
    mutation_prob: float = 0.3
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2:
            raise ValueError("population_size must be an even number >= 4")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        for p in (self.crossover_prob, self.mutation_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")


@dataclass(frozen=True)
class GenerationProgress:
    """Progress snapshot handed to an observer after each generation.

    Attributes:
        generation: 1-based index of the generation just completed.
        generations: total generations the run is configured for.
        evaluations: fresh objective evaluations so far (archive misses
            that reached the evaluator).
        requested: total genome lookups so far, including ones served by
            the run's memoisation archive.
        front_size: rank-0 individuals in the current population.
        archive_size: unique genomes evaluated so far.
    """

    generation: int
    generations: int
    evaluations: int
    requested: int
    front_size: int
    archive_size: int

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of genome lookups served by the run's own archive."""
        if self.requested == 0:
            return 0.0
        return 1.0 - self.evaluations / self.requested


#: Per-generation progress callback.  Called between generations only —
#: it must not mutate the problem and it cannot perturb the run (all rng
#: draws happen before the callback fires), so attaching one keeps the
#: result bit-identical.
ProgressObserver = Callable[[GenerationProgress], None]


@dataclass
class NSGA2Result:
    """Outcome of one NSGA-II run.

    Attributes:
        front: the non-dominated set over *every* genome the run ever
            evaluated (an external archive), deduplicated by genome.
            With four objectives the true front is often larger than the
            population, so archiving recovers points the fixed-size
            population had to crowd out.
        population: the full final population.
        history: per-generation copies of the rank-0 objective vectors,
            for convergence ablations.
        evaluations: number of objective evaluations performed (cached
            duplicates excluded).
        generations_run: generations actually completed (less than the
            configured count when the run was stopped early).
        stopped_early: True when ``should_stop`` ended the run before
            all configured generations.
    """

    front: list[Individual]
    population: list[Individual]
    history: list[list[tuple[float, ...]]] = field(default_factory=list)
    evaluations: int = 0
    generations_run: int = 0
    stopped_early: bool = False


def dominates(u: Sequence[float], v: Sequence[float]) -> bool:
    """Pareto dominance (minimisation), as Eq. (1) of the paper."""
    return all(a <= b for a, b in zip(u, v)) and any(a < b for a, b in zip(u, v))


def fast_non_dominated_sort(population: list[Individual]) -> list[list[Individual]]:
    """Deb's fast non-dominated sort; assigns ranks and returns the fronts."""
    dominated_by: list[list[int]] = [[] for _ in population]
    domination_count = [0] * len(population)
    fronts: list[list[int]] = [[]]
    for i, p in enumerate(population):
        for j, q in enumerate(population):
            if i == j:
                continue
            if dominates(p.objectives, q.objectives):
                dominated_by[i].append(j)
            elif dominates(q.objectives, p.objectives):
                domination_count[i] += 1
        if domination_count[i] == 0:
            p.rank = 0
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    population[j].rank = current + 1
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [[population[i] for i in front] for front in fronts[:-1]]


def crowding_distance(front: list[Individual]) -> None:
    """Assign crowding distances in place (boundary points get infinity)."""
    n = len(front)
    for ind in front:
        ind.crowding = 0.0
    if n == 0:
        return
    if n <= 2:
        for ind in front:
            ind.crowding = INFINITY
        return
    n_obj = len(front[0].objectives)
    for m in range(n_obj):
        front.sort(key=lambda ind: ind.objectives[m])
        lo = front[0].objectives[m]
        hi = front[-1].objectives[m]
        front[0].crowding = INFINITY
        front[-1].crowding = INFINITY
        span = hi - lo
        if span == 0:
            continue
        for i in range(1, n - 1):
            gap = front[i + 1].objectives[m] - front[i - 1].objectives[m]
            front[i].crowding += gap / span


def _tournament(rng: random.Random, population: list[Individual]) -> Individual:
    a, b = rng.sample(population, 2)
    if a.rank != b.rank:
        return a if a.rank < b.rank else b
    return a if a.crowding > b.crowding else b


def _crossover(
    rng: random.Random, mother: Genome, father: Genome, prob: float
) -> tuple[Genome, Genome]:
    if rng.random() >= prob:
        return mother, father
    child_a = list(mother)
    child_b = list(father)
    for i in range(len(mother)):
        if rng.random() < 0.5:
            child_a[i], child_b[i] = child_b[i], child_a[i]
    return tuple(child_a), tuple(child_b)


def _mutate(
    rng: random.Random, genome: Genome, steps: Sequence[int], prob: float
) -> Genome:
    genes = list(genome)
    for i, step in enumerate(steps):
        if rng.random() < prob:
            delta = rng.randint(-step, step)
            genes[i] += delta
    return tuple(genes)


def _archive_front(archive: dict[Genome, tuple[float, ...]]) -> list[Individual]:
    """Rank-0 individuals over the whole evaluation archive.

    Only the first front is needed, so this runs a single non-dominated
    filter instead of the full multi-front sort (which is quadratic in
    archive size *per front*).  The archive dict is already deduplicated
    by genome, so no further dedup pass is required.
    """
    items = [Individual(g, o) for g, o in archive.items()]
    front: list[Individual] = []
    for candidate in items:
        if any(
            dominates(other.objectives, candidate.objectives)
            for other in items
            if other is not candidate
        ):
            continue
        candidate.rank = 0
        front.append(candidate)
    crowding_distance(front)
    return front


def nsga2(
    problem: Problem,
    config: NSGA2Config | None = None,
    evaluator: BatchEvaluator | None = None,
    observer: ProgressObserver | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> NSGA2Result:
    """Run NSGA-II on ``problem`` and return the final Pareto front.

    Objective evaluations are memoised per genome in an archive dict:
    the DCIM space is discrete and the GA revisits points frequently.
    Each generation's *new* genomes are evaluated as one batch — through
    ``evaluator`` when given (e.g. a cached thread/process-pool
    :class:`repro.service.executor.ProblemEvaluator`), otherwise through
    the problem's own ``evaluate_batch``/``evaluate``.  Because
    evaluation is pure and order-preserving, the run is bit-identical
    for a fixed seed regardless of the backend.

    Args:
        observer: called with a :class:`GenerationProgress` after each
            completed generation.  Observers run between generations
            (never inside variation or evaluation), so an attached
            observer cannot change the outcome — results stay
            bit-identical per seed.
        should_stop: polled once before each generation; returning True
            stops the run cooperatively at that generation boundary.
            The result then carries everything evaluated so far with
            ``stopped_early=True`` — the front over a prefix of the run
            is identical to what the same seed would have produced had
            it been configured with that many generations.
    """
    config = config or NSGA2Config()
    rng = random.Random(config.seed)
    #: Every genome ever evaluated, keyed for O(1) dedup lookups.
    archive: dict[Genome, tuple[float, ...]] = {}
    evaluations = 0
    requested = 0

    if evaluator is not None:
        batch_fn: Callable[[Sequence[Genome]], Sequence[tuple[float, ...]]] = (
            evaluator.evaluate_batch
        )
    elif hasattr(problem, "evaluate_batch"):
        batch_fn = problem.evaluate_batch
    else:
        batch_fn = lambda genomes: [problem.evaluate(g) for g in genomes]

    def evaluate_all(genomes: Sequence[Genome]) -> None:
        """Batch-evaluate the not-yet-archived genomes (deduplicated)."""
        nonlocal evaluations, requested
        requested += len(genomes)
        pending: dict[Genome, None] = {}
        for genome in genomes:
            if genome not in archive:
                pending[genome] = None
        if not pending:
            return
        fresh = batch_fn(list(pending))
        if len(fresh) != len(pending):
            raise ValueError(
                f"evaluator returned {len(fresh)} results for "
                f"{len(pending)} genomes"
            )
        for genome, objectives in zip(pending, fresh):
            archive[genome] = tuple(objectives)
        evaluations += len(pending)

    genomes = [problem.sample(rng) for _ in range(config.population_size)]
    evaluate_all(genomes)
    population = [Individual(g, archive[g]) for g in genomes]

    history: list[list[tuple[float, ...]]] = []
    steps = problem.mutation_steps()
    generations_run = 0
    stopped_early = False

    for generation in range(config.generations):
        if should_stop is not None and should_stop():
            stopped_early = True
            break
        fronts = fast_non_dominated_sort(population)
        for front in fronts:
            crowding_distance(front)
        # Variation: fill an offspring population of equal size.  The
        # children are bred first (all rng draws happen here), then the
        # generation's new genomes are evaluated as one batch.
        children: list[Genome] = []
        while len(children) < config.population_size:
            mother = _tournament(rng, population)
            father = _tournament(rng, population)
            for child in _crossover(
                rng, mother.genome, father.genome, config.crossover_prob
            ):
                child = _mutate(rng, child, steps, config.mutation_prob)
                child = problem.repair(child, rng)
                children.append(child)
        children = children[: config.population_size]
        evaluate_all(children)
        offspring = [Individual(g, archive[g]) for g in children]
        # Elitist environmental selection over parents + offspring.
        merged = population + offspring
        fronts = fast_non_dominated_sort(merged)
        survivors: list[Individual] = []
        for front in fronts:
            crowding_distance(front)
            if len(survivors) + len(front) <= config.population_size:
                survivors.extend(front)
            else:
                front.sort(key=lambda ind: ind.crowding, reverse=True)
                survivors.extend(front[: config.population_size - len(survivors)])
                break
        population = survivors
        history.append(
            [ind.objectives for ind in population if ind.rank == 0]
        )
        generations_run = generation + 1
        if observer is not None:
            observer(
                GenerationProgress(
                    generation=generations_run,
                    generations=config.generations,
                    evaluations=evaluations,
                    requested=requested,
                    front_size=len(history[-1]),
                    archive_size=len(archive),
                )
            )

    # Final front over the archive of everything evaluated, not just the
    # surviving population.  The archive is keyed by genome, so the
    # front needs no separate dedup pass.
    front = _archive_front(archive)
    return NSGA2Result(
        front=front,
        population=population,
        history=history,
        evaluations=evaluations,
        generations_run=generations_run,
        stopped_early=stopped_early,
    )
