"""NSGA-II, implemented from scratch (Deb et al., 2002).

The paper's design space explorer runs "a classic NSGA-II algorithm" per
architecture.  This module provides a self-contained integer-genome
NSGA-II with:

* fast non-dominated sorting,
* crowding-distance assignment,
* binary tournament selection on (rank, crowding),
* uniform crossover and random-step mutation followed by the problem's
  *repair* operator (keeping the storage constraint exact), and
* elitist (mu + lambda) environmental selection.

It is deliberately independent of DCIM specifics: anything implementing
the small :class:`Problem` protocol can be optimised.

Population state runs as parallel arrays (genome / objective / rank /
crowding sequences) through the backend-selectable sort and crowding
kernels of :mod:`repro.dse.kernels` — ``NSGA2Config.backend`` picks
``numpy`` or the pure-Python reference exactly like the cost engine's
``engine`` option, and both produce bit-identical per-seed results.
:class:`Individual` objects are built only at the API boundary (the
returned front and population), so the public shapes are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.dse.kernels import (
    KERNEL_BACKENDS,
    GAKernels,
    breed_offspring,
    novel_genomes,
)
from repro.dse.kernels import python as _reference_kernels

__all__ = [
    "Problem",
    "BatchEvaluator",
    "Individual",
    "NSGA2Config",
    "NSGA2Result",
    "GenerationProgress",
    "ProgressObserver",
    "nsga2",
    "fast_non_dominated_sort",
    "crowding_distance",
]

Genome = tuple[int, ...]
INFINITY = float("inf")


class Problem(Protocol):
    """Minimal interface the optimiser needs."""

    def sample(self, rng: random.Random) -> Genome:
        """Draw a random feasible genome."""

    def repair(self, genome: Genome, rng: random.Random) -> Genome:
        """Project a genome back into the feasible set."""

    def evaluate(self, genome: Genome) -> tuple[float, ...]:
        """Minimised objective vector for a feasible genome."""

    def mutation_steps(self) -> Sequence[int]:
        """Per-gene maximum mutation step sizes."""

    def evaluate_batch(
        self, genomes: Sequence[Genome]
    ) -> Sequence[tuple[float, ...]]:
        """Objective vectors for many genomes, in input order.

        Optional hook: when present, the optimiser evaluates each
        generation's new genomes through one call; otherwise it maps
        :meth:`evaluate`.  :class:`repro.dse.problem.DcimProblem`
        vectorises this through the batch cost engine
        (:mod:`repro.model.engine`), so one call per generation is the
        hot path, not a convenience.
        """
        return [self.evaluate(genome) for genome in genomes]


@runtime_checkable
class BatchEvaluator(Protocol):
    """Optional injectable evaluator: one call per generation batch.

    Implementations (see :class:`repro.service.executor.ProblemEvaluator`)
    may serve genomes from a shared persistent cache and fan the rest
    out to thread/process pools.  Results must come back in input
    order, and evaluation must be a pure function of the genome so a
    cached run is bit-identical to an uncached one.
    """

    def evaluate_batch(
        self, genomes: Sequence[Genome]
    ) -> Sequence[tuple[float, ...]]:
        """Objective vectors for ``genomes``, in input order."""
        ...


@dataclass
class Individual:
    """A genome with its cached objectives and NSGA-II bookkeeping."""

    genome: Genome
    objectives: tuple[float, ...]
    rank: int = 0
    crowding: float = 0.0


@dataclass(frozen=True)
class NSGA2Config:
    """Hyper-parameters of the explorer.

    The defaults are sized so one (Wstore, precision) exploration runs in
    seconds (the paper quotes "within 30 minutes" on their server; our
    analytical models are much cheaper to evaluate).

    ``backend`` selects the sort/crowding kernel implementation
    (``auto``/``numpy``/``python``, see :mod:`repro.dse.kernels`); it
    never changes results, only speed.
    """

    population_size: int = 64
    generations: int = 60
    crossover_prob: float = 0.9
    mutation_prob: float = 0.3
    seed: int | None = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2:
            raise ValueError("population_size must be an even number >= 4")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        for p in (self.crossover_prob, self.mutation_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")
        if self.backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown GA kernel backend {self.backend!r}; "
                f"choose from {KERNEL_BACKENDS}"
            )


@dataclass(frozen=True)
class GenerationProgress:
    """Progress snapshot handed to an observer after each generation.

    Attributes:
        generation: 1-based index of the generation just completed.
        generations: total generations the run is configured for.
        evaluations: fresh objective evaluations so far (archive misses
            that reached the evaluator).
        requested: total genome lookups so far, including ones served by
            the run's memoisation archive.
        front_size: rank-0 individuals in the current population.
        archive_size: unique genomes evaluated so far.
    """

    generation: int
    generations: int
    evaluations: int
    requested: int
    front_size: int
    archive_size: int

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of genome lookups served by the run's own archive."""
        if self.requested == 0:
            return 0.0
        return 1.0 - self.evaluations / self.requested


#: Per-generation progress callback.  Called between generations only —
#: it must not mutate the problem and it cannot perturb the run (all rng
#: draws happen before the callback fires), so attaching one keeps the
#: result bit-identical.
ProgressObserver = Callable[[GenerationProgress], None]


@dataclass
class NSGA2Result:
    """Outcome of one NSGA-II run.

    Attributes:
        front: the non-dominated set over *every* genome the run ever
            evaluated (an external archive), deduplicated by genome.
            With four objectives the true front is often larger than the
            population, so archiving recovers points the fixed-size
            population had to crowd out.
        population: the full final population.
        history: per-generation copies of the rank-0 objective vectors,
            for convergence ablations.
        evaluations: number of objective evaluations performed (cached
            duplicates excluded).
        generations_run: generations actually completed (less than the
            configured count when the run was stopped early).
        stopped_early: True when ``should_stop`` ended the run before
            all configured generations.
    """

    front: list[Individual]
    population: list[Individual]
    history: list[list[tuple[float, ...]]] = field(default_factory=list)
    evaluations: int = 0
    generations_run: int = 0
    stopped_early: bool = False


def dominates(u: Sequence[float], v: Sequence[float]) -> bool:
    """Pareto dominance (minimisation), as Eq. (1) of the paper."""
    return all(a <= b for a, b in zip(u, v)) and any(a < b for a, b in zip(u, v))


def fast_non_dominated_sort(population: list[Individual]) -> list[list[Individual]]:
    """Deb's fast non-dominated sort; assigns ranks and returns the fronts.

    Object-level convenience over the index-form reference kernel
    (:func:`repro.dse.kernels.python.nondominated_sort`), kept for
    callers that work with :class:`Individual` lists directly.
    """
    objectives = [ind.objectives for ind in population]
    ranks, fronts = _reference_kernels.nondominated_sort(objectives)
    for ind, rank in zip(population, ranks):
        ind.rank = rank
    return [[population[i] for i in front] for front in fronts]


def crowding_distance(front: list[Individual]) -> None:
    """Assign crowding distances in place (boundary points get infinity).

    Reorders ``front`` the way the per-objective stable sorts leave it,
    exactly as before the kernel refactor — object-level convenience
    over :func:`repro.dse.kernels.python.crowding`.
    """
    objectives = [ind.objectives for ind in front]
    perm, dist = _reference_kernels.crowding(objectives, range(len(front)))
    front[:] = [front[i] for i in perm]
    for ind, value in zip(front, dist):
        ind.crowding = value


def _archive_front(
    archive: dict[Genome, tuple[float, ...]], kernels: GAKernels
) -> list[Individual]:
    """Rank-0 individuals over the whole evaluation archive.

    Only the first front is needed, so this runs a single non-dominated
    filter instead of the full multi-front sort (which is quadratic in
    archive size *per front*).  The archive dict is already deduplicated
    by genome, so no further dedup pass is required.
    """
    genomes = list(archive)
    objectives = [archive[g] for g in genomes]
    matrix = kernels.as_matrix(objectives)
    keep = kernels.pareto_filter(matrix)
    perm, dist = kernels.crowding(matrix, keep)
    return [
        Individual(genomes[i], objectives[i], 0, value)
        for i, value in zip(perm, dist)
    ]


def nsga2(
    problem: Problem,
    config: NSGA2Config | None = None,
    evaluator: BatchEvaluator | None = None,
    observer: ProgressObserver | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> NSGA2Result:
    """Run NSGA-II on ``problem`` and return the final Pareto front.

    Objective evaluations are memoised per genome in an archive dict:
    the DCIM space is discrete and the GA revisits points frequently.
    Each generation's *new* genomes are evaluated as one batch — through
    ``evaluator`` when given (e.g. a cached thread/process-pool
    :class:`repro.service.executor.ProblemEvaluator`), otherwise through
    the problem's own ``evaluate_batch``/``evaluate``.  Because
    evaluation is pure and order-preserving, the run is bit-identical
    for a fixed seed regardless of the backend.

    Population state lives in parallel arrays (genomes, objectives,
    ranks, crowding); sorting and crowding run through the configured
    :mod:`repro.dse.kernels` backend, variation through the shared
    single-rng-stream operators.  ``config.backend`` therefore never
    changes results — the numpy and python kernels are bit-identical.

    Args:
        observer: called with a :class:`GenerationProgress` after each
            completed generation.  Observers run between generations
            (never inside variation or evaluation), so an attached
            observer cannot change the outcome — results stay
            bit-identical per seed.
        should_stop: polled once before each generation; returning True
            stops the run cooperatively at that generation boundary.
            The result then carries everything evaluated so far with
            ``stopped_early=True`` — the front over a prefix of the run
            is identical to what the same seed would have produced had
            it been configured with that many generations.
    """
    config = config or NSGA2Config()
    rng = random.Random(config.seed)
    kernels = GAKernels(config.backend)
    #: Every genome ever evaluated, keyed for O(1) dedup lookups.
    archive: dict[Genome, tuple[float, ...]] = {}
    evaluations = 0
    requested = 0

    if evaluator is not None:
        batch_fn: Callable[[Sequence[Genome]], Sequence[tuple[float, ...]]] = (
            evaluator.evaluate_batch
        )
    elif hasattr(problem, "evaluate_batch"):
        batch_fn = problem.evaluate_batch
    else:
        batch_fn = lambda genomes: [problem.evaluate(g) for g in genomes]

    def evaluate_all(genomes: Sequence[Genome]) -> None:
        """Batch-evaluate the not-yet-archived genomes (deduplicated)."""
        nonlocal evaluations, requested
        requested += len(genomes)
        pending = novel_genomes(genomes, archive)
        if not pending:
            return
        fresh = batch_fn(pending)
        if len(fresh) != len(pending):
            raise ValueError(
                f"evaluator returned {len(fresh)} results for "
                f"{len(pending)} genomes"
            )
        for genome, objectives in zip(pending, fresh):
            archive[genome] = tuple(objectives)
        evaluations += len(pending)

    # Parallel population arrays: genome, objective vector, rank and
    # crowding per slot.  Ranks/crowding hold their defaults until the
    # first generation's sort runs (matching the old Individual fields).
    pop_genomes = [problem.sample(rng) for _ in range(config.population_size)]
    evaluate_all(pop_genomes)
    pop_objectives = [archive[g] for g in pop_genomes]
    pop_ranks = [0] * config.population_size
    pop_crowding = [0.0] * config.population_size

    history: list[list[tuple[float, ...]]] = []
    steps = problem.mutation_steps()
    generations_run = 0
    stopped_early = False

    for generation in range(config.generations):
        if should_stop is not None and should_stop():
            stopped_early = True
            break
        # Parent ranking feeds tournament selection.
        matrix = kernels.as_matrix(pop_objectives)
        ranks, fronts = kernels.nondominated_sort(matrix)
        pop_ranks = ranks
        for front in fronts:
            perm, dist = kernels.crowding(matrix, front)
            for i, value in zip(perm, dist):
                pop_crowding[i] = value
        # Variation: fill an offspring population of equal size.  The
        # children are bred first (all rng draws happen here), then the
        # generation's new genomes are evaluated as one batch.
        children = breed_offspring(
            rng,
            pop_genomes,
            pop_ranks,
            pop_crowding,
            steps,
            config.crossover_prob,
            config.mutation_prob,
            problem.repair,
            config.population_size,
        )
        evaluate_all(children)
        # Elitist environmental selection over parents + offspring.
        merged_genomes = pop_genomes + children
        merged_objectives = pop_objectives + [archive[g] for g in children]
        matrix = kernels.as_matrix(merged_objectives)
        ranks, fronts = kernels.nondominated_sort(matrix)
        survivors: list[int] = []
        survivor_crowding: list[float] = []
        for front in fronts:
            perm, dist = kernels.crowding(matrix, front)
            if len(survivors) + len(perm) <= config.population_size:
                survivors.extend(perm)
                survivor_crowding.extend(dist)
            else:
                # Stable descending-crowding truncation — same order the
                # old `front.sort(key=..., reverse=True)` produced.
                order = sorted(range(len(dist)), key=lambda k: -dist[k])
                room = config.population_size - len(survivors)
                survivors.extend(perm[k] for k in order[:room])
                survivor_crowding.extend(dist[k] for k in order[:room])
                break
        pop_genomes = [merged_genomes[i] for i in survivors]
        pop_objectives = [merged_objectives[i] for i in survivors]
        pop_ranks = [ranks[i] for i in survivors]
        pop_crowding = survivor_crowding
        history.append(
            [
                objectives
                for objectives, rank in zip(pop_objectives, pop_ranks)
                if rank == 0
            ]
        )
        generations_run = generation + 1
        if observer is not None:
            observer(
                GenerationProgress(
                    generation=generations_run,
                    generations=config.generations,
                    evaluations=evaluations,
                    requested=requested,
                    front_size=len(history[-1]),
                    archive_size=len(archive),
                )
            )

    population = [
        Individual(genome, objectives, rank, crowding)
        for genome, objectives, rank, crowding in zip(
            pop_genomes, pop_objectives, pop_ranks, pop_crowding
        )
    ]
    # Final front over the archive of everything evaluated, not just the
    # surviving population.  The archive is keyed by genome, so the
    # front needs no separate dedup pass.
    front = _archive_front(archive, kernels)
    return NSGA2Result(
        front=front,
        population=population,
        history=history,
        evaluations=evaluations,
        generations_run=generations_run,
        stopped_early=stopped_early,
    )
