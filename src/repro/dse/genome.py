"""Design-point encoding for the genetic explorer.

The storage constraint of Eqs. (2)/(3) — ``N * H * L / Bw == Wstore``
(``Bw -> BM`` for FP) — is satisfied *by construction* rather than by
penalty: we encode

* ``N = Bw * 2^a`` (so ``N`` is always a multiple of the weight width,
  as the column grouping requires),
* ``H = 2^b``,
* ``L = 2^c``,

which turns the constraint into the integer identity
``a + b + c == log2(Wstore)``.  The fourth gene indexes the sorted list
of divisors of the input width, giving a legal bit-serial slice ``k``.

A :class:`GenomeCodec` owns the bounds derived from a
:class:`~repro.core.spec.DcimSpec` (``N > 4*Bw``, ``L <= 64``,
``H <= 2048``) and provides sampling, repair, and decode.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.precision import Precision
from repro.core.spec import DcimSpec, DesignPoint

__all__ = ["Genome", "GenomeCodec", "divisors"]

#: A genome is the integer tuple (a, b, c, k_idx).
Genome = tuple[int, int, int, int]


def divisors(n: int) -> list[int]:
    """Sorted positive divisors of ``n`` (legal ``k`` values for width n)."""
    if n < 1:
        raise ValueError(f"need a positive width, got {n}")
    small, large = [], []
    for d in range(1, int(math.isqrt(n)) + 1):
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
    return small + large[::-1]


@dataclass(frozen=True)
class GenomeCodec:
    """Encode/decode design points for one :class:`DcimSpec`.

    Attributes:
        spec: the user specification the codec serves.
    """

    spec: DcimSpec

    def __post_init__(self) -> None:
        wstore = self.spec.wstore
        exponent = math.log2(wstore)
        if exponent != int(exponent):
            raise ValueError(
                f"Wstore must be a power of two for the exponent encoding, "
                f"got {wstore}"
            )
        if self.total_exponent > self.max_a + self.max_b + self.max_c:
            raise ValueError(
                f"Wstore={wstore} cannot fit the bounds "
                f"L<={self.spec.max_l}, H<={self.spec.max_h}"
            )
        if self.total_exponent < self.min_a:
            raise ValueError(
                f"Wstore={wstore} is too small for the bound N>{4 * self.weight_bits}"
            )

    # Derived bounds -------------------------------------------------------
    @property
    def precision(self) -> Precision:
        return self.spec.precision

    @property
    def weight_bits(self) -> int:
        """``Bw`` (INT) or ``BM`` (FP): the encoded column-group width."""
        return self.precision.weight_bits

    @property
    def total_exponent(self) -> int:
        """``a + b + c`` must equal ``log2(Wstore)``."""
        return int(math.log2(self.spec.wstore))

    @property
    def min_a(self) -> int:
        """Smallest ``a`` with ``N = Bw * 2^a > min_n_factor * Bw``."""
        factor = self.spec.min_n_factor
        if factor == 0:
            return 0
        return int(math.floor(math.log2(factor))) + 1

    @property
    def max_a(self) -> int:
        if self.spec.max_n is None:
            return self.total_exponent
        return min(
            int(math.log2(self.spec.max_n // self.weight_bits)),
            self.total_exponent,
        )

    @property
    def max_b(self) -> int:
        """Largest ``b`` with ``H = 2^b <= max_h``."""
        return min(int(math.log2(self.spec.max_h)), self.total_exponent)

    @property
    def max_c(self) -> int:
        """Largest ``c`` with ``L = 2^c <= max_l``."""
        return min(int(math.log2(self.spec.max_l)), self.total_exponent)

    @property
    def k_choices(self) -> list[int]:
        """Legal per-cycle input slices: divisors of the input width."""
        return divisors(self.precision.input_bits)

    # Sampling / repair ----------------------------------------------------
    def sample(self, rng: random.Random) -> Genome:
        """Draw a random feasible genome (uniform over repaired draws)."""
        a = rng.randint(self.min_a, self.max_a)
        b = rng.randint(0, self.max_b)
        c = rng.randint(0, self.max_c)
        k_idx = rng.randrange(len(self.k_choices))
        return self.repair((a, b, c, k_idx), rng)

    def repair(self, genome: Genome, rng: random.Random) -> Genome:
        """Project an arbitrary integer genome back into the feasible set.

        Clips each gene into its box, then redistributes the exponent
        surplus/deficit among ``(a, b, c)`` in random order so the sum
        constraint holds exactly.
        """
        a, b, c, k_idx = genome
        a = min(max(a, self.min_a), self.max_a)
        b = min(max(b, 0), self.max_b)
        c = min(max(c, 0), self.max_c)
        k_idx = min(max(k_idx, 0), len(self.k_choices) - 1)

        lows = {"a": self.min_a, "b": 0, "c": 0}
        highs = {"a": self.max_a, "b": self.max_b, "c": self.max_c}
        genes = {"a": a, "b": b, "c": c}
        delta = self.total_exponent - (a + b + c)
        names = ["a", "b", "c"]
        rng.shuffle(names)
        for name in names:
            if delta == 0:
                break
            if delta > 0:
                room = highs[name] - genes[name]
                step = min(room, delta)
            else:
                room = genes[name] - lows[name]
                step = -min(room, -delta)
            genes[name] += step
            delta -= step
        if delta != 0:  # pragma: no cover - excluded by codec validation
            raise RuntimeError("repair failed; bounds validated at construction")
        return (genes["a"], genes["b"], genes["c"], k_idx)

    def is_feasible(self, genome: Genome) -> bool:
        """True when a genome decodes to a design meeting the spec."""
        a, b, c, k_idx = genome
        return (
            self.min_a <= a <= self.max_a
            and 0 <= b <= self.max_b
            and 0 <= c <= self.max_c
            and 0 <= k_idx < len(self.k_choices)
            and a + b + c == self.total_exponent
        )

    # Decoding -------------------------------------------------------------
    def decode(self, genome: Genome) -> DesignPoint:
        """Materialise the genome as a validated :class:`DesignPoint`."""
        if not self.is_feasible(genome):
            raise ValueError(f"infeasible genome {genome}")
        a, b, c, k_idx = genome
        return DesignPoint(
            precision=self.precision,
            n=self.weight_bits * 2**a,
            h=2**b,
            l=2**c,
            k=self.k_choices[k_idx],
        )

    def decode_batch(self, genomes: Sequence[Genome]) -> list[DesignPoint]:
        """Materialise many genomes as design points, in input order."""
        return [self.decode(genome) for genome in genomes]

    def decode_params(
        self, genomes: Sequence[Genome]
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """Decode many genomes into ``(N, H, L, k)`` parameter columns.

        This is the batch evaluation fast path: it checks feasibility
        with the bounds hoisted out of the loop and skips
        :class:`DesignPoint` construction entirely, because the cost
        engine consumes raw parameter arrays.

        Raises:
            ValueError: on the first infeasible genome, matching
                :meth:`decode`.
        """
        min_a, max_a = self.min_a, self.max_a
        max_b, max_c = self.max_b, self.max_c
        total = self.total_exponent
        k_choices = self.k_choices
        n_k = len(k_choices)
        bw = self.weight_bits
        n, h, l, k = [], [], [], []
        for genome in genomes:
            a, b, c, k_idx = genome
            if not (
                min_a <= a <= max_a
                and 0 <= b <= max_b
                and 0 <= c <= max_c
                and 0 <= k_idx < n_k
                and a + b + c == total
            ):
                raise ValueError(f"infeasible genome {tuple(genome)}")
            n.append(bw << a)
            h.append(1 << b)
            l.append(1 << c)
            k.append(k_choices[k_idx])
        return n, h, l, k

    def encode(self, point: DesignPoint) -> Genome:
        """Inverse of :meth:`decode` for seeding known-good designs."""
        bw = self.weight_bits
        if point.n % bw:
            raise ValueError(f"N={point.n} is not a multiple of {bw}")
        a = int(math.log2(point.n // bw))
        b = int(math.log2(point.h))
        c = int(math.log2(point.l))
        k_idx = self.k_choices.index(point.k)
        genome = (a, b, c, k_idx)
        if not self.is_feasible(genome):
            raise ValueError(f"design {point.describe()} violates the spec bounds")
        return genome

    def enumerate(self) -> list[Genome]:
        """All feasible genomes (the space is small enough to exhaust).

        Used by the brute-force baseline that validates NSGA-II and by
        the design-space ablation benches.
        """
        out = []
        for a in range(self.min_a, self.max_a + 1):
            for b in range(0, self.max_b + 1):
                c = self.total_exponent - a - b
                if 0 <= c <= self.max_c:
                    for k_idx in range(len(self.k_choices)):
                        out.append((a, b, c, k_idx))
        return out
