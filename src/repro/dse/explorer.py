"""MOGA-based design space explorer (Fig. 4 centre block).

Runs NSGA-II for a specification, decodes the resulting front into
:class:`~repro.core.spec.DesignPoint` objects, and can merge fronts from
several specifications (e.g. an INT and an FP candidate precision for
the same application) into one cross-architecture frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.pareto import hypervolume, normalize_objectives, pareto_front
from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.nsga2 import (
    NSGA2Config,
    NSGA2Result,
    ProgressObserver,
    nsga2,
)
from repro.dse.problem import DcimProblem
from repro.tech.cells import CellLibrary

__all__ = [
    "DEFAULT_EXHAUSTIVE_THRESHOLD",
    "ExplorationResult",
    "DesignSpaceExplorer",
    "design_space_size",
    "merge_exploration_results",
]

#: Largest enumerable design space (decoded genome count) that defaults
#: to exhaustive enumeration instead of the GA.  With batch evaluation a
#: few hundred genomes cost one engine call, which is cheaper than any
#: GA run *and* exact; every stock DCIM spec enumerates well under this.
DEFAULT_EXHAUSTIVE_THRESHOLD = 512


def design_space_size(problem) -> int | None:
    """Decoded design-space size, or None when not enumerable.

    Only problems exposing the optional ``enumerate_genomes`` hook (see
    :meth:`repro.dse.problem.DcimProblem.enumerate_genomes`) report a
    size; anything else — e.g. the mapping problem, whose codec covers
    only part of its genome — returns None and always runs the GA.
    """
    if not hasattr(problem, "enumerate_genomes"):
        return None
    return len(problem.enumerate_genomes())


@dataclass
class ExplorationResult:
    """The Pareto frontier for one specification.

    Attributes:
        spec: the explored specification.
        points: non-dominated design points, sorted by area.
        objectives: matching ``[A, D, E, -T]`` normalised objective rows.
        evaluations: objective evaluations spent by the GA.
        history: per-generation rank-0 objective snapshots.
        generations_run: GA generations actually completed (fewer than
            configured when the run was cancelled).
        stopped_early: True when a ``should_stop`` hook ended the GA
            before all configured generations.
        strategy: how the frontier was obtained — ``"ga"`` (NSGA-II) or
            ``"exhaustive"`` (full enumeration; exact by construction).
    """

    spec: DcimSpec
    points: list[DesignPoint]
    objectives: np.ndarray
    evaluations: int = 0
    history: list[list[tuple[float, ...]]] = field(default_factory=list)
    generations_run: int = 0
    stopped_early: bool = False
    strategy: str = "ga"

    def __len__(self) -> int:
        return len(self.points)

    def front_hypervolume(self) -> float:
        """Hypervolume of the normalised front w.r.t. the (1.1, ...) box.

        A scalar front-quality figure used by the convergence ablation.
        """
        if len(self.points) == 0:
            return 0.0
        unit = normalize_objectives(self.objectives)
        return hypervolume(unit, [1.1] * unit.shape[1])


class DesignSpaceExplorer:
    """Drives NSGA-II per architecture and merges the outcomes.

    Args:
        library: normalised cell library (the "Customized Cell Library"
            input of Fig. 4).
        config: NSGA-II hyper-parameters.
        cache: optional shared persistent evaluation cache
            (:class:`repro.service.cache.EvaluationCache`); evaluations
            are served from and written back to it.
        executor: optional batch backend
            (:class:`repro.service.executor.BatchExecutor`) that
            evaluates each generation's new genomes in parallel.
        engine: cost-engine backend (``auto``/``numpy``/``python``)
            forwarded to every :class:`DcimProblem`; all backends are
            bit-identical, so this is purely a throughput knob.
        problem_factory: optional ``spec -> problem`` hook replacing the
            default :class:`DcimProblem` construction; this is how the
            campaign layer dispatches through the
            :mod:`repro.problems` registry.  The returned object must
            implement the :class:`~repro.dse.nsga2.Problem` protocol
            plus ``decode``.
        exhaustive_threshold: largest enumerable design space
            :meth:`explore_auto` resolves to exhaustive enumeration;
            ``0`` or ``None`` disables the exhaustive default and always
            runs the GA.
    """

    def __init__(
        self,
        library: CellLibrary | None = None,
        config: NSGA2Config | None = None,
        cache=None,
        executor=None,
        engine: str = "auto",
        problem_factory: Callable | None = None,
        exhaustive_threshold: int | None = DEFAULT_EXHAUSTIVE_THRESHOLD,
    ) -> None:
        self.library = library or CellLibrary.default()
        self.config = config or NSGA2Config()
        self.cache = cache
        self.executor = executor
        self.engine = engine
        self.problem_factory = problem_factory
        self.exhaustive_threshold = exhaustive_threshold

    def _problem(self, spec: DcimSpec) -> DcimProblem:
        if self.problem_factory is not None:
            return self.problem_factory(spec)
        return DcimProblem(spec, self.library, engine_backend=self.engine)

    def _evaluator(self, problem: DcimProblem):
        if self.cache is None and self.executor is None:
            return None
        from repro.service.executor import ProblemEvaluator

        return ProblemEvaluator(problem, cache=self.cache, executor=self.executor)

    def explore(
        self,
        spec: DcimSpec,
        seed: int | None = None,
        observer: ProgressObserver | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> ExplorationResult:
        """Explore one specification and return its Pareto frontier.

        Args:
            observer: forwarded to :func:`repro.dse.nsga2.nsga2` — called
                with a :class:`~repro.dse.nsga2.GenerationProgress` after
                each generation; attaching one never changes the result.
            should_stop: cooperative cancellation hook polled between
                generations; a stopped run returns the frontier over
                everything evaluated so far (``stopped_early=True``).
        """
        problem = self._problem(spec)
        config = self.config
        if seed is not None:
            config = replace(config, seed=seed)
        result: NSGA2Result = nsga2(
            problem,
            config,
            evaluator=self._evaluator(problem),
            observer=observer,
            should_stop=should_stop,
        )
        points = [problem.decode(ind.genome) for ind in result.front]
        objectives = [ind.objectives for ind in result.front]
        order = np.argsort([o[0] for o in objectives]) if objectives else []
        points = [points[i] for i in order]
        objectives = [objectives[i] for i in order]
        return ExplorationResult(
            spec=spec,
            points=points,
            objectives=np.array(objectives, dtype=float).reshape(len(points), -1),
            evaluations=result.evaluations,
            history=result.history,
            generations_run=result.generations_run,
            stopped_early=result.stopped_early,
        )

    def select_strategy(self, spec: DcimSpec) -> str:
        """``"exhaustive"`` or ``"ga"`` for a spec, per the threshold.

        Exhaustive wins when the problem can enumerate its genomes
        (:func:`design_space_size` is not None) and the space is no
        larger than ``exhaustive_threshold``; everything else runs the
        GA.
        """
        if not self.exhaustive_threshold:
            return "ga"
        size = design_space_size(self._problem(spec))
        if size is not None and size <= self.exhaustive_threshold:
            return "exhaustive"
        return "ga"

    def explore_auto(
        self,
        spec: DcimSpec,
        seed: int | None = None,
        observer: ProgressObserver | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> ExplorationResult:
        """Explore one spec with the strategy :meth:`select_strategy` picks.

        Small enumerable spaces get the exact exhaustive frontier (the
        GA could only ever approximate it, at higher cost); larger or
        non-enumerable spaces run NSGA-II.  The chosen strategy is
        recorded on the result.
        """
        if self.select_strategy(spec) == "exhaustive":
            return self.explore_exhaustive(spec, should_stop=should_stop)
        return self.explore(
            spec, seed=seed, observer=observer, should_stop=should_stop
        )

    def explore_exhaustive(
        self,
        spec: DcimSpec,
        should_stop: Callable[[], bool] | None = None,
    ) -> ExplorationResult:
        """Exact frontier by enumeration (baseline / small spaces).

        Evaluation routes through the same cached batch evaluator the GA
        uses, so an exhaustive run both warms and is served by the
        shared evaluation cache.  ``evaluations`` counts the full
        enumeration (every genome is requested, wherever it is served
        from).
        """
        problem = self._problem(spec)
        if not hasattr(problem, "enumerate_genomes"):
            raise ValueError(
                f"problem {type(problem).__name__} cannot enumerate its "
                "design space; run the GA instead"
            )
        if should_stop is not None and should_stop():
            return ExplorationResult(
                spec=spec,
                points=[],
                objectives=np.empty((0, 0)),
                stopped_early=True,
                strategy="exhaustive",
            )
        genomes = problem.enumerate_genomes()
        evaluator = self._evaluator(problem)
        if evaluator is not None:
            objectives = list(evaluator.evaluate_batch(genomes))
        else:
            objectives = list(problem.evaluate_batch(genomes))
        front = pareto_front(list(zip(genomes, objectives)), objectives)
        points = [problem.decode(g) for g, _ in front]
        kept = [o for _, o in front]
        order = np.argsort([o[0] for o in kept]) if kept else []
        points = [points[i] for i in order]
        kept = [kept[i] for i in order]
        return ExplorationResult(
            spec=spec,
            points=points,
            objectives=np.array(kept, dtype=float).reshape(len(points), -1),
            evaluations=len(genomes),
            strategy="exhaustive",
        )

    def explore_many(
        self, specs: list[DcimSpec], seed: int | None = None
    ) -> list[ExplorationResult]:
        """Explore several specifications (one NSGA-II run each)."""
        return [
            self.explore(spec, None if seed is None else seed + i)
            for i, spec in enumerate(specs)
        ]

    @staticmethod
    def merge_fronts(results: list[ExplorationResult]) -> list[DesignPoint]:
        """Cross-architecture non-dominated merge of several frontiers.

        This yields the paper's "high-quality Pareto-frontier set
        containing both integer and floating-point solutions": objective
        vectors from all runs compete in one dominance filter.
        """
        return merge_exploration_results(results)[0]


def merge_exploration_results(
    results: list[ExplorationResult],
) -> tuple[list[DesignPoint], np.ndarray]:
    """Merge several frontiers into one dominance-filtered, area-sorted set.

    The single merge implementation shared by
    :meth:`DesignSpaceExplorer.merge_fronts` and the campaign runner:
    one :func:`~repro.core.pareto.pareto_front` call over the
    concatenated fronts, carrying the objective rows alongside and
    sorting by area (objective 0) like :class:`ExplorationResult` does.
    """
    points: list[DesignPoint] = []
    objectives: list[tuple[float, ...]] = []
    for result in results:
        points.extend(result.points)
        objectives.extend(map(tuple, result.objectives))
    if not points:
        return [], np.empty((0, 0))
    merged = pareto_front(list(zip(points, objectives)), objectives)
    merged.sort(key=lambda po: po[1][0])
    merged_points = [p for p, _ in merged]
    merged_objs = np.array([o for _, o in merged], dtype=float)
    return merged_points, merged_objs
