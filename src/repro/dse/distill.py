"""User distillation of the Pareto frontier (Fig. 4, "User Distillation").

After exploration, the user narrows the frontier with physical
requirements (area/power/throughput/delay budgets) and finally picks one
design with a selection strategy (knee point, extreme of one metric, or
a weighted score).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pareto import knee_point
from repro.core.spec import DesignPoint
from repro.model.metrics import MacroMetrics
from repro.tech.cells import CellLibrary
from repro.tech.technology import Technology

__all__ = ["Requirements", "distill", "select", "SELECTION_STRATEGIES"]


@dataclass(frozen=True)
class Requirements:
    """Physical budgets a distilled design must satisfy.

    Any ``None`` bound is ignored.  Bounds are inclusive.
    """

    max_area_mm2: float | None = None
    max_power_w: float | None = None
    max_delay_ns: float | None = None
    min_tops: float | None = None
    min_tops_per_watt: float | None = None
    min_tops_per_mm2: float | None = None

    def admits(self, metrics: MacroMetrics) -> bool:
        """True when the metrics satisfy every given bound."""
        checks = (
            (self.max_area_mm2, metrics.layout_area_mm2, False),
            (self.max_power_w, metrics.power_w, False),
            (self.max_delay_ns, metrics.delay_ns, False),
            (self.min_tops, metrics.tops, True),
            (self.min_tops_per_watt, metrics.tops_per_watt, True),
            (self.min_tops_per_mm2, metrics.tops_per_mm2, True),
        )
        for bound, value, is_lower in checks:
            if bound is None:
                continue
            if is_lower and value < bound:
                return False
            if not is_lower and value > bound:
                return False
        return True


def distill(
    points: list[DesignPoint],
    tech: Technology,
    requirements: Requirements | None = None,
    library: CellLibrary | None = None,
) -> list[tuple[DesignPoint, MacroMetrics]]:
    """Attach metrics to Pareto designs and drop those outside budget."""
    requirements = requirements or Requirements()
    out = []
    for point in points:
        metrics = point.metrics(tech, library)
        if requirements.admits(metrics):
            out.append((point, metrics))
    return out


def _score_matrix(pairs: list[tuple[DesignPoint, MacroMetrics]]) -> np.ndarray:
    return np.array(
        [
            [m.layout_area_mm2, m.delay_ns, m.energy_per_pass_nj, -m.tops]
            for _, m in pairs
        ]
    )


#: Named selection strategies accepted by :func:`select`.
SELECTION_STRATEGIES = (
    "knee",
    "min_area",
    "min_delay",
    "min_energy",
    "max_tops",
    "max_tops_per_watt",
    "max_tops_per_mm2",
)


def select(
    pairs: list[tuple[DesignPoint, MacroMetrics]],
    strategy: str = "knee",
) -> tuple[DesignPoint, MacroMetrics]:
    """Pick one design from a distilled frontier.

    Args:
        pairs: output of :func:`distill` (must be non-empty).
        strategy: one of :data:`SELECTION_STRATEGIES`.

    Raises:
        ValueError: on an empty frontier or unknown strategy.
    """
    if not pairs:
        raise ValueError("no designs satisfy the requirements")
    if strategy == "knee":
        return pairs[knee_point(_score_matrix(pairs))]
    key = {
        "min_area": lambda pm: pm[1].layout_area_mm2,
        "min_delay": lambda pm: pm[1].delay_ns,
        "min_energy": lambda pm: pm[1].energy_per_pass_nj,
        "max_tops": lambda pm: -pm[1].tops,
        "max_tops_per_watt": lambda pm: -pm[1].tops_per_watt,
        "max_tops_per_mm2": lambda pm: -pm[1].tops_per_mm2,
    }.get(strategy)
    if key is None:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {SELECTION_STRATEGIES}"
        )
    return min(pairs, key=key)
