"""MOGA-based design space exploration (NSGA-II) for SEGA-DCIM."""

from repro.dse.baselines import random_search, weighted_sum_search
from repro.dse.distill import Requirements, SELECTION_STRATEGIES, distill, select
from repro.dse.explorer import DesignSpaceExplorer, ExplorationResult
from repro.dse.genome import GenomeCodec, divisors
from repro.dse.nsga2 import (
    Individual,
    NSGA2Config,
    NSGA2Result,
    crowding_distance,
    fast_non_dominated_sort,
    nsga2,
)
from repro.dse.problem import OBJECTIVE_NAMES, DcimProblem, objectives_of

__all__ = [
    "random_search",
    "weighted_sum_search",
    "GenomeCodec",
    "divisors",
    "NSGA2Config",
    "NSGA2Result",
    "Individual",
    "nsga2",
    "fast_non_dominated_sort",
    "crowding_distance",
    "DcimProblem",
    "OBJECTIVE_NAMES",
    "objectives_of",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "Requirements",
    "distill",
    "select",
    "SELECTION_STRATEGIES",
]
