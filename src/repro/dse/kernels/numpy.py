"""Vectorised NSGA-II bookkeeping kernels (numpy backend).

Array-form implementations of the :mod:`repro.dse.kernels.python`
reference: an O(M·N²) broadcast dominance matrix feeds the rank
peeling, crowding runs as stable argsorts per objective, and the
archive front filter is one dominance pass.  Results — values *and*
tie-breaking order — are bit-identical to the reference:

* **Ranks/fronts.**  ``fronts[0]`` is ``counts == 0`` in ascending
  index order (``np.flatnonzero``).  The reference appends a row to the
  next front the moment its *last* same-front dominator is processed,
  so each next front is ordered by ``(position of that dominator in
  the current front, row index)`` — reproduced here with a reversed
  ``argmax`` over the dominance submatrix plus one stable argsort
  (stable sorting an ascending-index array preserves the index
  tie-break).
* **Crowding.**  Sequential stable argsorts replicate the reference's
  in-place stable list sorts, so the permutation after the final
  objective — and therefore which rows sit on each boundary of the
  intermediate orders — matches exactly.  Distances are the same
  float64 ``gap / span`` sums CPython computes (IEEE-754 double ops
  round identically), and boundary assignment happens before the
  zero-span check, exactly like the reference.

``nan`` objectives are unsupported (Python's list sort and numpy's
argsort order them differently); ``inf`` values are fine — both sorts
place them consistently and the nan arithmetic they can induce in
``gap / span`` propagates identically.
"""

from __future__ import annotations

import numpy as np

from repro.core.pareto import dominance_matrix, dominated_flags

__all__ = ["nondominated_sort", "crowding", "pareto_filter"]

INFINITY = float("inf")


def nondominated_sort(
    objectives: np.ndarray,
) -> tuple[list[int], list[list[int]]]:
    """Vectorised Deb sort; see the python reference for the contract."""
    obj = np.asarray(objectives, dtype=float)
    n = len(obj)
    if n == 0:
        return [], []
    beats = dominance_matrix(obj)  # beats[i, j]: row i dominates row j
    counts = beats.sum(axis=0).astype(np.int64)
    ranks = np.zeros(n, dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    fronts: list[list[int]] = []
    current = np.flatnonzero(counts == 0)
    rank = 0
    while current.size:
        fronts.append(current.tolist())
        ranks[current] = rank
        assigned[current] = True
        sub = beats[current]  # (f, n): dominators drawn from this front
        dec = sub.sum(axis=0)
        counts -= dec
        newly = np.flatnonzero((counts == 0) & ~assigned & (dec > 0))
        if newly.size:
            # Position (within the current front) of each new row's
            # last dominator: argmax over the reversed rows finds the
            # last True.  Stable-sorting the ascending `newly` array by
            # that position reproduces the reference's discovery order.
            reversed_sub = sub[::-1][:, newly]
            last_pos = (len(current) - 1) - reversed_sub.argmax(axis=0)
            current = newly[np.argsort(last_pos, kind="stable")]
        else:
            current = newly
        rank += 1
    return ranks.tolist(), fronts


def crowding(
    objectives: np.ndarray, front
) -> tuple[list[int], list[float]]:
    """Vectorised crowding; see the python reference for the contract."""
    base = np.asarray(front, dtype=np.int64)
    n = base.size
    if n == 0:
        return [], []
    if n <= 2:
        return base.tolist(), [INFINITY] * n
    points = np.asarray(objectives, dtype=float)[base]  # (n, m)
    perm = np.arange(n)  # positions into `base`, permuted per objective
    dist = np.zeros(n)  # indexed by position in `base`
    # inf - inf produces nan exactly like the CPython reference does;
    # silence numpy's warning so both backends are equally quiet.
    with np.errstate(invalid="ignore"):
        for m in range(points.shape[1]):
            keys = points[perm, m]
            perm = perm[np.argsort(keys, kind="stable")]
            values = points[perm, m]
            dist[perm[0]] = INFINITY
            dist[perm[-1]] = INFINITY
            span = values[-1] - values[0]
            if span == 0:
                continue
            gaps = values[2:] - values[:-2]
            dist[perm[1:-1]] += gaps / span
    return base[perm].tolist(), dist[perm].tolist()


def pareto_filter(objectives: np.ndarray) -> list[int]:
    """Non-dominated row indices in input order, via one dominance pass."""
    obj = np.asarray(objectives, dtype=float)
    if len(obj) == 0:
        return []
    return np.flatnonzero(~dominated_flags(obj)).tolist()
