"""Pure-Python reference NSGA-II bookkeeping kernels.

This is the pre-kernel ``repro.dse.nsga2`` logic, refactored from
Individual-object form to index form: every function takes a sequence
of objective vectors (one tuple per individual) plus index lists, and
returns indices/values instead of mutating objects.  It is the parity
*reference* — the numpy backend in :mod:`repro.dse.kernels.numpy` must
reproduce these results (including tie-breaking order) bit for bit,
which the hypothesis suite in ``tests/test_ga_kernels.py`` enforces.

Ordering contracts the numpy backend replicates exactly:

* :func:`nondominated_sort` — front 0 in ascending index order; each
  later front in the order Deb's peeling loop discovers members, which
  is ``(position of the last same-front dominator, index)`` ascending.
* :func:`crowding` — the returned permutation is the front after the
  per-objective stable sorts (so it ends sorted by the last objective),
  exactly how the in-place ``crowding_distance`` reordered fronts
  before this refactor.
* :func:`pareto_filter` — survivors in input order; duplicate objective
  vectors are all kept (equal rows never strictly dominate).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["nondominated_sort", "crowding", "pareto_filter"]

INFINITY = float("inf")

Vector = Sequence[float]


def _dominates(u: Vector, v: Vector) -> bool:
    """Pareto dominance (minimisation): all <=, at least one <."""
    return all(a <= b for a, b in zip(u, v)) and any(
        a < b for a, b in zip(u, v)
    )


def nondominated_sort(
    objectives: Sequence[Vector],
) -> tuple[list[int], list[list[int]]]:
    """Deb's fast non-dominated sort over objective rows.

    Returns ``(ranks, fronts)``: one 0-based rank per row, and the
    fronts as index lists (``fronts[0]`` is rank 0).  Every row appears
    in exactly one front.
    """
    n = len(objectives)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    ranks = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        oi = objectives[i]
        for j in range(n):
            if i == j:
                continue
            oj = objectives[j]
            if _dominates(oi, oj):
                dominated_by[i].append(j)
            elif _dominates(oj, oi):
                domination_count[i] += 1
        if domination_count[i] == 0:
            ranks[i] = 0
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    ranks[j] = current + 1
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return ranks, fronts[:-1]


def crowding(
    objectives: Sequence[Vector], front: Sequence[int]
) -> tuple[list[int], list[float]]:
    """Crowding distances for one front of row indices.

    Returns ``(perm, dist)``: the front's indices in post-sort order
    (sequential stable sorts by each objective) and the matching
    crowding distance per position.  Boundary points get infinity, even
    for zero-span objectives; fronts of one or two members are all
    infinite and keep their input order.
    """
    order = list(front)
    n = len(order)
    if n == 0:
        return [], []
    if n <= 2:
        return order, [INFINITY] * n
    dist = {i: 0.0 for i in order}
    n_obj = len(objectives[order[0]])
    for m in range(n_obj):
        order.sort(key=lambda i: objectives[i][m])
        lo = objectives[order[0]][m]
        hi = objectives[order[-1]][m]
        dist[order[0]] = INFINITY
        dist[order[-1]] = INFINITY
        span = hi - lo
        if span == 0:
            continue
        for pos in range(1, n - 1):
            gap = objectives[order[pos + 1]][m] - objectives[order[pos - 1]][m]
            dist[order[pos]] += gap / span
    return order, [dist[i] for i in order]


def pareto_filter(objectives: Sequence[Vector]) -> list[int]:
    """Indices of non-dominated rows, in input order."""
    n = len(objectives)
    keep: list[int] = []
    for j in range(n):
        oj = objectives[j]
        if any(_dominates(objectives[i], oj) for i in range(n) if i != j):
            continue
        keep.append(j)
    return keep
