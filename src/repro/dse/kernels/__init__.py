"""Array-native NSGA-II primitives with numpy and pure-Python backends.

The GA's per-generation bookkeeping — non-dominated sorting, crowding
distance, the archive front filter — is the dominant cost now that
evaluation is batched (PR 2).  This package provides those primitives
in two bit-identical backends, selected exactly like
:mod:`repro.model.engine`:

* ``"numpy"`` (:mod:`repro.dse.kernels.numpy`): O(M·N²) broadcast
  dominance matrix, stable argsorts per objective.
* ``"python"`` (:mod:`repro.dse.kernels.python`): the pre-kernel
  reference implementation in index form.
* ``"auto"``: numpy when importable, else python.

Both backends return the same ranks, the same front orders (including
every tie-break) and the same float64 crowding values, so per-seed
``nsga2()`` trajectories are unchanged no matter which one runs — the
hypothesis parity suite and golden-fingerprint tests pin this.

The *variation* operators (tournament, uniform crossover, step
mutation) and the hash-based archive dedup live here as shared code:
they draw from the run's single ``random.Random`` stream in a frozen
order (tournament × 2, crossover, then per child mutation + repair),
and the problem's ``repair`` hook consumes that stream too, so
vectorising them would change per-seed results.  They operate on the
parallel rank/crowding arrays the sort kernels produce, which is what
makes the whole loop array-native.

:class:`GAKernels` is the facade ``nsga2()`` drives; it resolves the
backend once and times every sort/crowding call into the
``repro_ga_sort_seconds`` / ``repro_ga_crowding_seconds`` histograms
(labelled by backend) of the process metrics registry.  Timing happens
outside all rng draws, so instrumentation never perturbs a run.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Sequence

from repro.model.engine import HAS_NUMPY
from repro.obs.metrics import get_registry

__all__ = [
    "KERNEL_BACKENDS",
    "HAS_NUMPY",
    "resolve_kernel_backend",
    "GAKernels",
    "tournament_index",
    "uniform_crossover",
    "step_mutation",
    "breed_offspring",
    "novel_genomes",
]

Genome = tuple[int, ...]

#: Backend names ``resolve_kernel_backend`` accepts.
KERNEL_BACKENDS = ("auto", "numpy", "python")


def resolve_kernel_backend(backend: str = "auto") -> str:
    """Resolve a requested GA-kernel backend to the one that will run.

    ``"auto"`` picks numpy when importable and falls back to the pure
    Python reference otherwise; the explicit names force one path
    (useful for parity tests and numpy-less deployments).

    Raises:
        ValueError: on an unknown name, or when ``"numpy"`` is forced
            but numpy is not importable.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown GA kernel backend {backend!r}; "
            f"choose from {KERNEL_BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise ValueError(
            "GA kernel backend 'numpy' requested but numpy is not importable"
        )
    return backend


class GAKernels:
    """Resolved sort/crowding/front kernels plus their instrumentation.

    Args:
        backend: requested backend name (``auto``/``numpy``/``python``).
        registry: metrics registry to time kernel calls into; defaults
            to the process registry
            (:func:`repro.obs.metrics.get_registry`).  With the null
            registry every observation is a no-op.
    """

    def __init__(self, backend: str = "auto", registry=None) -> None:
        self.backend = resolve_kernel_backend(backend)
        if self.backend == "numpy":
            from repro.dse.kernels import numpy as impl
        else:
            from repro.dse.kernels import python as impl
        self._impl = impl
        registry = get_registry() if registry is None else registry
        self._sort_seconds = registry.histogram(
            "repro_ga_sort_seconds",
            "Wall time of one non-dominated sort kernel call",
            ("backend",),
        ).labels(self.backend)
        self._crowding_seconds = registry.histogram(
            "repro_ga_crowding_seconds",
            "Wall time of one crowding-distance kernel call",
            ("backend",),
        ).labels(self.backend)

    def as_matrix(self, objectives: Sequence[Sequence[float]]):
        """Backend-native (N, M) objective container.

        A float64 array for the numpy backend (exact conversion from
        CPython floats), the sequence itself for the python reference.
        """
        if self.backend == "numpy":
            import numpy as np

            if not len(objectives):
                return np.empty((0, 0), dtype=float)
            return np.asarray(objectives, dtype=float)
        return objectives

    def nondominated_sort(self, matrix) -> tuple[list[int], list[list[int]]]:
        """(ranks, fronts-as-index-lists) for an ``as_matrix`` result."""
        start = time.perf_counter()
        result = self._impl.nondominated_sort(matrix)
        self._sort_seconds.observe(time.perf_counter() - start)
        return result

    def crowding(self, matrix, front: Sequence[int]) -> tuple[list[int], list[float]]:
        """(post-sort permutation, crowding per position) for one front."""
        start = time.perf_counter()
        result = self._impl.crowding(matrix, front)
        self._crowding_seconds.observe(time.perf_counter() - start)
        return result

    def pareto_filter(self, matrix) -> list[int]:
        """Non-dominated row indices in input order (archive front)."""
        start = time.perf_counter()
        result = self._impl.pareto_filter(matrix)
        self._sort_seconds.observe(time.perf_counter() - start)
        return result


# Variation operators ------------------------------------------------------
#
# These are deliberately *not* vectorised: they share one Random stream
# with the problem's repair hook in a frozen draw order, which is the
# bit-parity contract.  They consume the rank/crowding arrays the sort
# kernels produce.


def tournament_index(
    rng: random.Random, ranks: Sequence[int], crowding: Sequence[float]
) -> int:
    """Binary tournament on (rank, crowding); returns the winning index.

    Consumes exactly one ``rng.sample`` of two indices — the same draw
    the pre-kernel implementation made over the population list.
    """
    i, j = rng.sample(range(len(ranks)), 2)
    if ranks[i] != ranks[j]:
        return i if ranks[i] < ranks[j] else j
    return i if crowding[i] > crowding[j] else j


def uniform_crossover(
    rng: random.Random, mother: Genome, father: Genome, prob: float
) -> tuple[Genome, Genome]:
    """Per-gene uniform crossover (one skip draw, then one per gene)."""
    if rng.random() >= prob:
        return mother, father
    child_a = list(mother)
    child_b = list(father)
    for i in range(len(mother)):
        if rng.random() < 0.5:
            child_a[i], child_b[i] = child_b[i], child_a[i]
    return tuple(child_a), tuple(child_b)


def step_mutation(
    rng: random.Random, genome: Genome, steps: Sequence[int], prob: float
) -> Genome:
    """Random-step mutation (one gate draw per gene, one step when hit)."""
    genes = list(genome)
    for i, step in enumerate(steps):
        if rng.random() < prob:
            delta = rng.randint(-step, step)
            genes[i] += delta
    return tuple(genes)


def breed_offspring(
    rng: random.Random,
    genomes: Sequence[Genome],
    ranks: Sequence[int],
    crowding: Sequence[float],
    steps: Sequence[int],
    crossover_prob: float,
    mutation_prob: float,
    repair: Callable[[Genome, random.Random], Genome],
    count: int,
) -> list[Genome]:
    """Breed a full offspring batch from parallel population arrays.

    Per pair the rng stream is: tournament × 2, crossover draws, then
    for each child the mutation draws followed by ``repair`` (which may
    draw too).  The loop overshoots by at most one child and truncates,
    exactly like the pre-kernel implementation.
    """
    children: list[Genome] = []
    while len(children) < count:
        mother = genomes[tournament_index(rng, ranks, crowding)]
        father = genomes[tournament_index(rng, ranks, crowding)]
        for child in uniform_crossover(rng, mother, father, crossover_prob):
            child = step_mutation(rng, child, steps, mutation_prob)
            children.append(repair(child, rng))
    return children[:count]


def novel_genomes(
    genomes: Sequence[Genome], known: Sequence[Genome] | dict
) -> list[Genome]:
    """Hash-based archive dedup: unseen genomes in first-seen order.

    ``known`` is anything supporting ``in`` by genome (the run's
    archive dict).  Duplicates within ``genomes`` collapse to their
    first occurrence — the order the evaluator batch receives.
    """
    pending: dict[Genome, None] = {}
    for genome in genomes:
        if genome not in known and genome not in pending:
            pending[genome] = None
    return list(pending)
