"""Multi-objective problem formulations (paper Eqs. 2 and 3).

Both architectures minimise ``[A, D, E, -T]``: area, clock period,
energy per pass, and negated peak throughput.  The storage constraint is
satisfied by the genome encoding (see :mod:`repro.dse.genome`), so the
GA never sees infeasible points.

Evaluation is batch-first: every path — the GA's per-generation
batches, the evaluation service's chunked executors, the exhaustive
baseline — funnels into :meth:`DcimProblem.evaluate_batch`, which
decodes the genomes into parameter columns and ships them to the
vectorised :class:`repro.model.engine.CostEngine`.  The scalar
:meth:`DcimProblem.evaluate` is a batch of one, and both are
bit-identical to evaluating ``DesignPoint.macro_cost`` point by point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.genome import Genome, GenomeCodec
from repro.model.engine import CostEngine
from repro.model.macro import MacroCost
from repro.tech.cells import CellLibrary

__all__ = ["DcimProblem", "OBJECTIVE_NAMES", "objectives_of"]

#: Order of the objective vector (all minimised; throughput negated).
OBJECTIVE_NAMES = ("area", "delay", "energy", "neg_throughput")


def objectives_of(cost: MacroCost) -> tuple[float, float, float, float]:
    """Map a macro cost onto the minimised objective vector of Eq. 2/3."""
    return (
        cost.area,
        cost.delay,
        cost.energy_per_pass,
        -cost.throughput,
    )


@dataclass
class DcimProblem:
    """The DSE problem for one (Wstore, precision) specification.

    Implements the :class:`repro.dse.nsga2.Problem` protocol.  Objective
    values are normalised NOR-gate units: converting to physical units is
    a strictly monotone per-objective transform, so the Pareto set is
    identical — physical metrics are attached after exploration.

    Attributes:
        spec: the user specification (Fig. 4 "User Defined" inputs).
        library: normalised standard-cell library.
        engine_backend: cost-engine backend (``auto``/``numpy``/
            ``python``); every backend returns bit-identical objectives,
            so this only changes throughput.
    """

    spec: DcimSpec
    library: CellLibrary = field(default_factory=CellLibrary.default)
    engine_backend: str = "auto"

    def __post_init__(self) -> None:
        self.codec = GenomeCodec(self.spec)
        self.engine = CostEngine(self.library, backend=self.engine_backend)

    # Problem protocol -----------------------------------------------------
    def sample(self, rng: random.Random) -> Genome:
        return self.codec.sample(rng)

    def repair(self, genome: Genome, rng: random.Random) -> Genome:
        return self.codec.repair(genome, rng)

    def evaluate(self, genome: Genome) -> tuple[float, ...]:
        """Objective vector for one genome: a batch of one."""
        return self.evaluate_batch([genome])[0]

    def evaluate_batch(self, genomes: Sequence[Genome]) -> list[tuple[float, ...]]:
        """Objective vectors for many genomes, in input order.

        This is the single evaluation path of the whole stack: genomes
        are decoded into ``(N, H, L, k)`` columns and the batch engine
        evaluates the architecture's analytic model in one shot.  The
        service's executors call it once per genome chunk.
        """
        if not genomes:
            return []
        n, h, l, k = self.codec.decode_params(genomes)
        precision = self.spec.precision
        if precision.is_float:
            batch = self.engine.evaluate_fp(
                n, h, l, k, be=precision.exponent_bits, bm=precision.mantissa_bits
            )
        else:
            batch = self.engine.evaluate_int(
                n, h, l, k, bx=precision.bits, bw=precision.bits
            )
        return batch.objectives()

    def mutation_steps(self) -> tuple[int, int, int, int]:
        # Exponent genes move a couple of octaves; the k index can jump
        # across its whole (short) list.
        k_span = max(len(self.codec.k_choices) - 1, 1)
        return (2, 2, 2, k_span)

    # Conveniences -----------------------------------------------------------
    def decode(self, genome: Genome) -> DesignPoint:
        """Materialise a genome as a design point."""
        return self.codec.decode(genome)

    def enumerate_genomes(self) -> list[Genome]:
        """Every feasible genome, in codec enumeration order.

        Optional capability hook the explorer uses to size the design
        space and to default small specs to exhaustive enumeration
        instead of the GA.  Problems whose codec does not cover the full
        genome (e.g. the mapping problem's extra loop-order genes)
        simply don't implement it and always run the GA.
        """
        return self.codec.enumerate()

    def exhaustive_front(self) -> list[DesignPoint]:
        """Brute-force true Pareto front by enumerating the whole space.

        The exponent encoding keeps the space small (hundreds of points),
        which makes this exact baseline cheap; the explorer tests compare
        NSGA-II's front against it.  Objectives come from the same
        :meth:`evaluate_batch` path as every other consumer.
        """
        return self.exhaustive_front_with_objectives()[0]

    def exhaustive_front_with_objectives(
        self,
    ) -> tuple[list[DesignPoint], list[tuple[float, ...]]]:
        """Exhaustive front plus its objective rows, from one batch."""
        from repro.core.pareto import pareto_front

        genomes = self.codec.enumerate()
        points = self.codec.decode_batch(genomes)
        objectives = self.evaluate_batch(genomes)
        front = pareto_front(list(zip(points, objectives)), objectives)
        return [p for p, _ in front], [o for _, o in front]
