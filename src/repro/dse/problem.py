"""Multi-objective problem formulations (paper Eqs. 2 and 3).

Both architectures minimise ``[A, D, E, -T]``: area, clock period,
energy per pass, and negated peak throughput.  The storage constraint is
satisfied by the genome encoding (see :mod:`repro.dse.genome`), so the
GA never sees infeasible points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse.genome import Genome, GenomeCodec
from repro.model.macro import MacroCost
from repro.tech.cells import CellLibrary

__all__ = ["DcimProblem", "OBJECTIVE_NAMES", "objectives_of"]

#: Order of the objective vector (all minimised; throughput negated).
OBJECTIVE_NAMES = ("area", "delay", "energy", "neg_throughput")


def objectives_of(cost: MacroCost) -> tuple[float, float, float, float]:
    """Map a macro cost onto the minimised objective vector of Eq. 2/3."""
    return (
        cost.area,
        cost.delay,
        cost.energy_per_pass,
        -cost.throughput,
    )


@dataclass
class DcimProblem:
    """The DSE problem for one (Wstore, precision) specification.

    Implements the :class:`repro.dse.nsga2.Problem` protocol.  Objective
    values are normalised NOR-gate units: converting to physical units is
    a strictly monotone per-objective transform, so the Pareto set is
    identical — physical metrics are attached after exploration.

    Attributes:
        spec: the user specification (Fig. 4 "User Defined" inputs).
        library: normalised standard-cell library.
    """

    spec: DcimSpec
    library: CellLibrary = field(default_factory=CellLibrary.default)

    def __post_init__(self) -> None:
        self.codec = GenomeCodec(self.spec)

    # Problem protocol -----------------------------------------------------
    def sample(self, rng: random.Random) -> Genome:
        return self.codec.sample(rng)

    def repair(self, genome: Genome, rng: random.Random) -> Genome:
        return self.codec.repair(genome, rng)

    def evaluate(self, genome: Genome) -> tuple[float, ...]:
        point = self.codec.decode(genome)
        return objectives_of(point.macro_cost(self.library))

    def evaluate_batch(self, genomes: Sequence[Genome]) -> list[tuple[float, ...]]:
        """Objective vectors for many genomes, in input order.

        The batch form is what the evaluation service's executors call:
        one pickled :class:`DcimProblem` plus a genome chunk per task.
        """
        return [self.evaluate(genome) for genome in genomes]

    def mutation_steps(self) -> tuple[int, int, int, int]:
        # Exponent genes move a couple of octaves; the k index can jump
        # across its whole (short) list.
        k_span = max(len(self.codec.k_choices) - 1, 1)
        return (2, 2, 2, k_span)

    # Conveniences -----------------------------------------------------------
    def decode(self, genome: Genome) -> DesignPoint:
        """Materialise a genome as a design point."""
        return self.codec.decode(genome)

    def exhaustive_front(self) -> list[DesignPoint]:
        """Brute-force true Pareto front by enumerating the whole space.

        The exponent encoding keeps the space small (hundreds of points),
        which makes this exact baseline cheap; the explorer tests compare
        NSGA-II's front against it.
        """
        from repro.core.pareto import pareto_front

        genomes = self.codec.enumerate()
        points = [self.codec.decode(g) for g in genomes]
        objs = [objectives_of(p.macro_cost(self.library)) for p in points]
        return pareto_front(points, objs)
