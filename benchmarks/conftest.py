"""Shared fixtures and result recording for the benchmark harness.

Every bench regenerates one table/figure of the paper and appends its
rendered output to ``benchmarks/results/<name>.txt`` so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record(results_dir):
    """Write one experiment's rendered output to results/<name>.txt."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
