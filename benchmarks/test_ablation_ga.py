"""Ablation: NSGA-II quality vs. the exhaustive baseline.

Design choices called out in DESIGN.md: the archive-based front and the
GA budget.  The bench measures front recall (fraction of the true
Pareto front recovered) and hypervolume as the generation budget grows,
plus determinism under a fixed seed.
"""

import numpy as np
import pytest

from repro.core.pareto import hypervolume, normalize_objectives
from repro.core.spec import DcimSpec
from repro.dse import DesignSpaceExplorer, NSGA2Config
from repro.reporting import ascii_table

SPEC = DcimSpec(wstore=64 * 1024, precision="INT8")


@pytest.fixture(scope="module")
def exact():
    return DesignSpaceExplorer().explore_exhaustive(SPEC)


def run_ga(generations, seed=0, population=32):
    explorer = DesignSpaceExplorer(
        config=NSGA2Config(
            population_size=population, generations=generations, seed=seed
        )
    )
    return explorer.explore(SPEC)


def recall(ga_result, exact_result):
    truth = {(p.n, p.h, p.l, p.k) for p in exact_result.points}
    found = {(p.n, p.h, p.l, p.k) for p in ga_result.points}
    return len(found & truth) / len(truth)


def test_ga_convergence_table(exact, record):
    ref_unit = normalize_objectives(exact.objectives)
    ref_hv = hypervolume(ref_unit, [1.1] * 4)
    rows = []
    for generations in (5, 10, 20, 40):
        ga = run_ga(generations)
        rows.append(
            (
                generations,
                ga.evaluations,
                f"{recall(ga, exact):.2f}",
                f"{ga.front_hypervolume() / ref_hv:.3f}",
            )
        )
    record(
        "ablation_ga",
        f"NSGA-II convergence toward the exact front "
        f"(true front: {len(exact.points)} of {exact.evaluations} points):\n"
        + ascii_table(
            ["generations", "evaluations", "front recall", "HV ratio"], rows
        ),
    )


def test_recall_improves_with_budget(exact):
    low = recall(run_ga(4, seed=2), exact)
    high = recall(run_ga(40, seed=2), exact)
    assert high >= low
    assert high > 0.8


def test_ga_front_precision(exact):
    # The GA's archive front is the true front of the visited subspace:
    # nearly every reported point must be genuinely Pareto-optimal.
    ga = run_ga(30, seed=7)
    truth = {(p.n, p.h, p.l, p.k) for p in exact.points}
    found = {(p.n, p.h, p.l, p.k) for p in ga.points}
    assert len(found & truth) / len(found) > 0.9


def test_seeded_determinism():
    a = run_ga(10, seed=5)
    b = run_ga(10, seed=5)
    assert [(p.n, p.h, p.l, p.k) for p in a.points] == [
        (p.n, p.h, p.l, p.k) for p in b.points
    ]


def test_population_size_effect(exact):
    small = recall(run_ga(20, seed=1, population=8), exact)
    large = recall(run_ga(20, seed=1, population=64), exact)
    assert large >= small


def test_ga_benchmark(benchmark):
    result = benchmark(run_ga, 20)
    assert len(result.points) > 10
