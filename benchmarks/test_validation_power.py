"""Validation: analytical energy model vs toggle-measured power.

The estimation model charges every component's gates each cycle, scaled
by one global activity factor (Technology.activity, 0.1 at the paper's
"10 % sparsity" point).  This bench measures *actual* switching on the
gate-level adder trees and compute fabric under controlled input
densities and reports measured/model ratios — validating that a single
activity scalar is a reasonable abstraction, and locating its value.
"""

import pytest

from repro.model.components import adder_tree
from repro.netlist import build_adder_tree
from repro.netlist.power import measure_power
from repro.reporting import ascii_table
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()
HEIGHTS = (8, 32, 128)
DENSITIES = (0.1, 0.3, 0.5)


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for h in HEIGHTS:
        netlist = build_adder_tree(h, 8)
        model = adder_tree(LIB, h, 8).energy
        out[h] = {
            d: (measure_power(netlist, vectors=150, seed=1, density=d), model)
            for d in DENSITIES
        }
    return out


def test_power_validation_table(measurements, record):
    rows = []
    for h, per_density in measurements.items():
        for d, (m, model) in per_density.items():
            rows.append(
                (
                    f"tree h={h}",
                    f"{d:.1f}",
                    f"{m.energy_per_vector:.0f}",
                    f"{model:.0f}",
                    f"{m.energy_per_vector / model:.2f}",
                    f"{m.activity:.2f}",
                )
            )
    record(
        "validation_power",
        "Measured switching energy vs analytical model (NOR units):\n"
        + ascii_table(
            ["block", "input density", "measured/vec", "model@act=1",
             "ratio", "toggle activity"],
            rows,
        )
        + "\n(one global activity scalar captures the density dependence; "
        "the paper's\n10% sparsity point corresponds to the low-density "
        "rows.)",
    )


def test_ratio_stable_across_sizes(measurements):
    # The measured/model ratio at a fixed density must not drift with
    # array height, otherwise one activity scalar could not serve the
    # whole design space.
    ratios = [
        measurements[h][0.5][0].energy_per_vector / measurements[h][0.5][1]
        for h in HEIGHTS
    ]
    assert max(ratios) / min(ratios) < 1.25


def test_sparser_inputs_switch_less(measurements):
    for h in HEIGHTS:
        sparse = measurements[h][0.1][0].energy_per_vector
        dense = measurements[h][0.5][0].energy_per_vector
        assert sparse < dense


def test_measured_below_full_activity_model(measurements):
    # The model at activity=1 is an upper bound on random stimulus.
    for h in HEIGHTS:
        for d in DENSITIES:
            m, model = measurements[h][d]
            assert m.energy_per_vector < model


def test_power_measurement_benchmark(benchmark):
    netlist = build_adder_tree(32, 8)
    result = benchmark(measure_power, netlist, 50)
    assert result.toggles > 0
