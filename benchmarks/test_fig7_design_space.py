"""Fig. 7: SEGA-DCIM design space at Wstore=64K across precisions.

The paper sweeps INT2..FP32 at 64K weights and reports, over the Pareto
fronts, that from INT2 to FP32 the *average* area grows 0.2 -> 60 mm^2,
average energy 0.3 -> 103 nJ, and average delay 1.2 -> 10.9 ns (the
four panels of Fig. 7).  We regenerate the per-precision fronts with
the exact (exhaustive) explorer under the paper's bounds (N > 4*Bw,
L <= 64, H <= 2048) and check the same trends and magnitudes.
"""

import numpy as np
import pytest

from repro.core.spec import DcimSpec
from repro.dse import DesignSpaceExplorer, distill
from repro.reporting import ascii_table
from repro.tech import GENERIC28

WSTORE = 64 * 1024
#: Panel order: integer precisions then FP by mantissa width.
PRECISIONS = ["INT2", "INT4", "INT8", "INT16", "FP8", "BF16", "FP16", "FP32"]


@pytest.fixture(scope="module")
def fronts():
    explorer = DesignSpaceExplorer()
    out = {}
    for name in PRECISIONS:
        result = explorer.explore_exhaustive(DcimSpec(wstore=WSTORE, precision=name))
        pairs = distill(result.points, GENERIC28)
        out[name] = pairs
    return out


def summarize(pairs):
    area = np.mean([m.layout_area_mm2 for _, m in pairs])
    energy = np.mean([m.energy_per_pass_nj for _, m in pairs])
    delay = np.mean([m.delay_ns for _, m in pairs])
    tops = np.mean([m.tops for _, m in pairs])
    return area, energy, delay, tops


def test_fig7_design_space_table(fronts, record):
    rows = []
    for name in PRECISIONS:
        area, energy, delay, tops = summarize(fronts[name])
        rows.append(
            (name, len(fronts[name]), f"{area:.2f}", f"{energy:.2f}",
             f"{delay:.2f}", f"{tops:.1f}")
        )
    table = ascii_table(
        ["precision", "front size", "avg area mm2", "avg energy nJ",
         "avg delay ns", "avg TOPS"],
        rows,
    )
    record(
        "fig7_design_space",
        "Fig. 7 design space at Wstore=64K (paper: avg area 0.2->60 mm2, "
        "avg energy 0.3->103 nJ,\navg delay 1.2->10.9 ns from INT2 to "
        "FP32):\n" + table,
    )


def test_fig7_scatter_plot(fronts, record):
    # The figure itself: per-precision fronts in the area-vs-throughput
    # plane (log-log), like Fig. 7's panels.
    from repro.reporting.plots import ascii_scatter

    series = {}
    for name in ("INT2", "INT8", "BF16", "FP32"):
        pairs = fronts[name]
        series[name] = (
            [m.layout_area_mm2 for _, m in pairs],
            [m.tops for _, m in pairs],
        )
    record(
        "fig7_scatter",
        "Fig. 7 (area vs peak TOPS, Pareto fronts at Wstore=64K):\n"
        + ascii_scatter(
            series,
            width=70,
            height=24,
            log_x=True,
            log_y=True,
            x_label="area mm2",
            y_label="TOPS",
        ),
    )


def test_fig7_area_trend(fronts):
    # Monotone growth INT2 -> INT16 and FP8 -> FP32; a multi-decade span.
    int_areas = [summarize(fronts[p])[0] for p in ("INT2", "INT4", "INT8", "INT16")]
    fp_areas = [summarize(fronts[p])[0] for p in ("FP8", "FP16", "FP32")]
    assert int_areas == sorted(int_areas)
    assert fp_areas == sorted(fp_areas)
    area_int2 = summarize(fronts["INT2"])[0]
    area_fp32 = summarize(fronts["FP32"])[0]
    assert area_fp32 / area_int2 > 30  # paper: 0.2 -> 60 (300x)
    assert 0.05 < area_int2 < 1.0
    assert 10 < area_fp32 < 200


def test_fig7_energy_trend(fronts):
    # Paper: 0.3 -> 103 nJ.  Our per-pass energies sit lower in absolute
    # terms (Egate is calibrated to Fig. 8's TOPS/W anchor; see
    # EXPERIMENTS.md) but the multi-decade growth must hold.
    e_int2 = summarize(fronts["INT2"])[1]
    e_fp32 = summarize(fronts["FP32"])[1]
    assert e_fp32 > 30 * e_int2
    assert 0.01 < e_int2 < 3.0
    assert 3.0 < e_fp32 < 500


def test_fig7_delay_trend(fronts):
    # Paper: 1.2 -> 10.9 ns average; the growth factor and the FP32
    # magnitude must match, INT2 fronts include shallower arrays than
    # the paper's average suggests.
    d_int2 = summarize(fronts["INT2"])[2]
    d_fp32 = summarize(fronts["FP32"])[2]
    assert d_fp32 > 2 * d_int2
    assert 0.1 < d_int2 < 4.0
    assert 4.0 < d_fp32 < 40.0


def test_fig7_bf16_tracks_int8(fronts):
    # "The overhead of BF16 is almost the same compared to INT8."
    a_int8 = summarize(fronts["INT8"])[0]
    a_bf16 = summarize(fronts["BF16"])[0]
    assert a_bf16 / a_int8 == pytest.approx(1.0, rel=0.35)


def test_fig7_exploration_benchmark(benchmark):
    explorer = DesignSpaceExplorer()

    def explore_one():
        return explorer.explore_exhaustive(
            DcimSpec(wstore=WSTORE, precision="INT8")
        )

    result = benchmark(explore_one)
    assert len(result.points) > 10
