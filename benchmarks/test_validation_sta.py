"""Validation: analytical delay model vs gate-level static timing.

The paper's estimation model (Tables II/IV) composes delays serially:
a ripple adder is ``(N-1) D_FA + D_HA`` and an adder tree pays a full
ripple per level.  At gate level the carry chains of consecutive levels
*overlap* (level i+1's low bits start as soon as level i's low bits are
ready), so measured critical paths are shorter and grow sub-linearly.

This bench quantifies the gap: the analytical model is a sound upper
bound (as a pre-RTL estimator should be), the STA shows the achievable
path, and the ratio is recorded per component.
"""

import pytest

from repro.model.components import adder_tree, prealignment, shift_accumulator
from repro.model.logic import adder
from repro.netlist import (
    build_adder_tree,
    build_prealign,
    build_shift_accumulator,
)
from repro.netlist.builders import build_compute_unit
from repro.netlist.timing import analyze_timing
from repro.reporting import ascii_table
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()


def compare_rows():
    rows = []
    for h in (4, 16, 64, 256):
        sta = analyze_timing(build_adder_tree(h, 8)).critical_delay
        model = adder_tree(LIB, h, 8).delay
        rows.append((f"adder_tree h={h}", f"{model:.0f}", f"{sta:.0f}",
                     f"{sta / model:.2f}"))
    for bx, k, h in ((8, 2, 16), (8, 8, 128)):
        sta = analyze_timing(build_shift_accumulator(bx, k, h)).critical_delay
        model = shift_accumulator(LIB, bx, h).delay
        rows.append(
            (f"accumulator bx={bx} h={h}", f"{model:.0f}", f"{sta:.0f}",
             f"{sta / model:.2f}")
        )
    for h, be, bm in ((8, 8, 8), (16, 5, 11)):
        sta = analyze_timing(build_prealign(h, be, bm)).critical_delay
        model = prealignment(LIB, h, be, bm).delay
        rows.append(
            (f"prealign h={h} bm={bm}", f"{model:.0f}", f"{sta:.0f}",
             f"{sta / model:.2f}")
        )
    return rows


def test_sta_validation_table(record):
    rows = compare_rows()
    record(
        "validation_sta",
        "Analytical delay model vs gate-level STA (NOR units):\n"
        + ascii_table(["component", "model", "STA", "ratio"], rows)
        + "\n(model >= STA everywhere: the paper-style composition is a "
        "sound,\nconservative pre-RTL bound; the gap is ripple-carry "
        "overlap.)",
    )


def test_model_is_sound_upper_bound():
    for label, model, sta, _ in compare_rows():
        assert float(sta) <= float(model) * 1.05, label


def test_overlap_grows_with_tree_height():
    # Deeper trees overlap more: the STA/model ratio falls with H.
    r4 = analyze_timing(build_adder_tree(4, 8)).critical_delay / adder_tree(
        LIB, 4, 8
    ).delay
    r256 = analyze_timing(build_adder_tree(256, 8)).critical_delay / adder_tree(
        LIB, 256, 8
    ).delay
    assert r256 < r4


def test_single_adder_close_to_model():
    # With no overlap available, a lone ripple adder's STA tracks the
    # model's linear growth.
    sta8 = analyze_timing(build_adder_tree(2, 8)).critical_delay
    sta16 = analyze_timing(build_adder_tree(2, 16)).critical_delay
    model8 = adder(LIB, 8).delay
    model16 = adder(LIB, 16).delay
    assert sta16 / sta8 == pytest.approx(model16 / model8, rel=0.25)


def test_sta_benchmark(benchmark):
    netlist = build_adder_tree(128, 8)
    report = benchmark(analyze_timing, netlist)
    assert report.critical_delay > 0
