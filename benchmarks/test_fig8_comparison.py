"""Fig. 8: efficiency comparison against fabricated SOTA DCIM macros.

Paper setup: energy efficiency (TOPS/W) at 0.9 V and 10 % sparsity and
area efficiency (TOPS/mm^2), sweeping Wstore with fixed precision.

* Fig. 8(a), INT8: design A (64K weights) reaches 22 TOPS/W and
  1.9 TOPS/mm^2 vs. TSMC's 22nm ISSCC'21 macro [5] at 15 TOPS/W and
  4.1 TOPS/mm^2 — higher energy efficiency, lower area efficiency
  (TSMC uses foundry SRAM arrays).
* Fig. 8(b), BF16: design B (64K) reaches 20.2 TOPS/W and
  1.8 TOPS/mm^2 vs. ISSCC'23-7.2 [7] at 14.1 TOPS/W and 2.05 TOPS/mm^2
  — same relationship.

Design A/B are the paper's hand-picked balanced designs; we reproduce
them as the *densest full-rate* front member: maximum compute-unit
sharing (largest L) with the full input slice (k = Bx), which matches
the published numbers closely.
"""

import pytest

from repro.core.spec import DcimSpec
from repro.dse import DesignSpaceExplorer, distill
from repro.reporting import ascii_table, format_si
from repro.tech import GENERIC28

#: Published reference points (fabricated 22nm macros).
REFERENCES = {
    "INT8": {"name": "TSMC ISSCC'21 [5]", "tops_w": 15.0, "tops_mm2": 4.1},
    "BF16": {"name": "ISSCC'23-7.2 [7]", "tops_w": 14.1, "tops_mm2": 2.05},
}
PAPER_DESIGNS = {
    "INT8": {"tops_w": 22.0, "tops_mm2": 1.9},
    "BF16": {"tops_w": 20.2, "tops_mm2": 1.8},
}
WSTORES = [4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]


def densest_full_rate(pairs, precision):
    """The paper's design A/B analogue: max L, k = full input width."""
    bx = precision.input_bits
    full_rate = [(p, m) for p, m in pairs if p.k == bx]
    assert full_rate, "front should contain full-rate designs"
    max_l = max(p.l for p, _ in full_rate)
    dense = [(p, m) for p, m in full_rate if p.l == max_l]
    return min(dense, key=lambda pm: pm[1].layout_area_mm2)


@pytest.fixture(scope="module")
def sweeps():
    explorer = DesignSpaceExplorer()
    out = {}
    for precision in ("INT8", "BF16"):
        per_size = {}
        for wstore in WSTORES:
            spec = DcimSpec(wstore=wstore, precision=precision)
            result = explorer.explore_exhaustive(spec)
            pairs = distill(result.points, GENERIC28)
            per_size[wstore] = densest_full_rate(pairs, spec.precision)
        out[precision] = per_size
    return out


def test_fig8_sweep_tables(sweeps, record):
    blocks = []
    for precision in ("INT8", "BF16"):
        rows = []
        for wstore, (point, metrics) in sweeps[precision].items():
            rows.append(
                (
                    format_si(wstore),
                    f"N={point.n} H={point.h} L={point.l} k={point.k}",
                    f"{metrics.tops_per_watt:.1f}",
                    f"{metrics.tops_per_mm2:.2f}",
                    f"{metrics.layout_area_mm2:.3f}",
                )
            )
        ref = REFERENCES[precision]
        paper = PAPER_DESIGNS[precision]
        blocks.append(
            f"Fig. 8 {precision}: reference {ref['name']} = "
            f"{ref['tops_w']} TOPS/W, {ref['tops_mm2']} TOPS/mm2; "
            f"paper design = {paper['tops_w']} TOPS/W, "
            f"{paper['tops_mm2']} TOPS/mm2\n"
            + ascii_table(
                ["Wstore", "design", "TOPS/W", "TOPS/mm2", "area mm2"], rows
            )
        )
    record("fig8_comparison", "\n\n".join(blocks))


def test_fig8_scatter_plot(sweeps, record):
    # The figure: efficiency trajectories over Wstore with the
    # fabricated reference points overlaid.
    from repro.reporting.plots import ascii_scatter

    series = {}
    for precision in ("INT8", "BF16"):
        pairs = sweeps[precision]
        series[precision] = (
            [m.tops_per_mm2 for _, m in pairs.values()],
            [m.tops_per_watt for _, m in pairs.values()],
        )
    series["references"] = (
        [REFERENCES["INT8"]["tops_mm2"], REFERENCES["BF16"]["tops_mm2"]],
        [REFERENCES["INT8"]["tops_w"], REFERENCES["BF16"]["tops_w"]],
    )
    record(
        "fig8_scatter",
        "Fig. 8 (TOPS/mm2 vs TOPS/W; sweeps over Wstore 4K..128K):\n"
        + ascii_scatter(
            series,
            width=70,
            height=22,
            x_label="TOPS/mm2",
            y_label="TOPS/W",
        ),
    )


@pytest.mark.parametrize("precision", ["INT8", "BF16"])
def test_fig8_design_matches_paper(sweeps, precision):
    _, metrics = sweeps[precision][64 * 1024]
    paper = PAPER_DESIGNS[precision]
    assert metrics.tops_per_watt == pytest.approx(paper["tops_w"], rel=0.25)
    assert metrics.tops_per_mm2 == pytest.approx(paper["tops_mm2"], rel=0.25)


@pytest.mark.parametrize("precision", ["INT8", "BF16"])
def test_fig8_shape_vs_references(sweeps, precision):
    # The headline shape: we win on TOPS/W, lose on TOPS/mm2.
    _, metrics = sweeps[precision][64 * 1024]
    ref = REFERENCES[precision]
    assert metrics.tops_per_watt > ref["tops_w"]
    assert metrics.tops_per_mm2 < ref["tops_mm2"]


def test_fig8_bf16_slightly_below_int8(sweeps):
    # Paper: design B (20.2 TOPS/W) < design A (22 TOPS/W): the FP
    # front end costs a little efficiency.
    int8 = sweeps["INT8"][64 * 1024][1].tops_per_watt
    bf16 = sweeps["BF16"][64 * 1024][1].tops_per_watt
    assert bf16 < int8


def test_fig8_efficiency_grows_with_wstore(sweeps):
    # Larger arrays amortise peripherals: the 128K design is more
    # energy-efficient than the 4K design.
    eff = {w: m.tops_per_watt for w, (_, m) in sweeps["INT8"].items()}
    assert eff[128 * 1024] > eff[4 * 1024]


def test_fig8_sweep_benchmark(benchmark):
    explorer = DesignSpaceExplorer()

    def one_point():
        spec = DcimSpec(wstore=16 * 1024, precision="INT8")
        pairs = distill(
            explorer.explore_exhaustive(spec).points, GENERIC28
        )
        return densest_full_rate(pairs, spec.precision)

    point, metrics = benchmark(one_point)
    assert metrics.tops_per_watt > 0
