"""Robustness: Monte-Carlo process variation on the Fig. 8 designs.

The conclusion claims "the experimental results demonstrate the
robustness and benefits of SEGA-DCIM"; this bench puts a number on
robustness: distribution of clock period and efficiency across sampled
die-to-die variation, and parametric yield at the nominal-period
budget.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.model.variation import monte_carlo
from repro.reporting import ascii_table
from repro.tech import GENERIC28

DESIGNS = {
    "INT8 64K (design A)": DesignPoint(precision="INT8", n=64, h=128, l=64, k=8),
    "BF16 64K (design B)": DesignPoint(precision="BF16", n=64, h=128, l=64, k=8),
}


@pytest.fixture(scope="module")
def mc():
    return {
        name: monte_carlo(design, GENERIC28, samples=1000, seed=3)
        for name, design in DESIGNS.items()
    }


def test_robustness_table(mc, record):
    rows = []
    for name, result in mc.items():
        s = result.summary()
        nominal_delay = DESIGNS[name].metrics(GENERIC28).delay_ns
        rows.append(
            (
                name,
                f"{s['delay_ns_p50']:.2f}",
                f"{s['delay_ns_p99']:.2f}",
                f"{s['tops_per_watt_p50']:.1f}",
                f"{s['tops_per_watt_p1']:.1f}",
                f"{result.yield_at(nominal_delay * 1.1):.2%}",
            )
        )
    record(
        "robustness_mc",
        "Monte-Carlo variation (1000 dies, 5% sigma on delay/energy):\n"
        + ascii_table(
            ["design", "delay p50 ns", "delay p99 ns", "TOPS/W p50",
             "TOPS/W p1", "yield @ +10% period"],
            rows,
        ),
    )


def test_yield_high_at_relaxed_budget(mc):
    for name, result in mc.items():
        nominal = DESIGNS[name].metrics(GENERIC28).delay_ns
        assert result.yield_at(nominal * 1.2) > 0.98


def test_efficiency_spread_contained(mc):
    for result in mc.values():
        p50 = result.percentile("tops_per_watt", 50)
        p1 = result.percentile("tops_per_watt", 1)
        assert p1 > 0.8 * p50  # 5% sigma keeps the tail within ~20%


def test_mc_benchmark(benchmark):
    design = DESIGNS["INT8 64K (design A)"]
    result = benchmark(monte_carlo, design, GENERIC28, 500)
    assert result.samples == 500
