"""Section IV runtime claims.

"The MOGA-based design exploration for a particular array size and
computing precision can be finished in 30 minutes" (on a Xeon server);
"each DCIM design can be generated within one hour".

Our analytical estimation models make both dramatically faster; the
bench records actual wall-clock for the paper-sized configuration
(Wstore=64K, full NSGA-II) and asserts the paper's budgets hold with
huge margin.
"""

import time

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse import DesignSpaceExplorer, NSGA2Config
from repro.layout import PnrFlow
from repro.reporting import ascii_table
from repro.rtl import generate_rtl
from repro.tech import GENERIC28


def full_ga_run():
    explorer = DesignSpaceExplorer(
        config=NSGA2Config(population_size=64, generations=60, seed=0)
    )
    return explorer.explore(DcimSpec(wstore=64 * 1024, precision="INT8"))


def test_dse_runtime_budget(record):
    start = time.perf_counter()
    result = full_ga_run()
    elapsed = time.perf_counter() - start
    assert elapsed < 30 * 60  # the paper's 30-minute budget
    design = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8)
    gen_start = time.perf_counter()
    rtl = generate_rtl(design)
    layout = PnrFlow(GENERIC28).run(design)
    gen_elapsed = time.perf_counter() - gen_start
    assert gen_elapsed < 60 * 60  # the paper's 1-hour budget
    record(
        "dse_runtime",
        "Runtime vs the paper's budgets:\n"
        + ascii_table(
            ["stage", "paper budget", "measured"],
            [
                ("DSE (64K INT8, NSGA-II 64x60)", "30 min",
                 f"{elapsed:.2f} s ({result.evaluations} evals)"),
                ("generation (RTL + P&R)", "60 min",
                 f"{gen_elapsed * 1e3:.1f} ms ({len(rtl.modules)} modules, "
                 f"{layout.area_mm2:.3f} mm2)"),
            ],
        ),
    )


def test_dse_benchmark(benchmark):
    result = benchmark(full_ga_run)
    assert len(result.points) > 20


def test_generation_benchmark(benchmark):
    design = DesignPoint(precision="BF16", n=64, h=128, l=64, k=8)

    def generate():
        return generate_rtl(design), PnrFlow(GENERIC28).run(design)

    rtl, layout = benchmark(generate)
    assert layout.area_mm2 > 0
