"""Section IV runtime claims.

"The MOGA-based design exploration for a particular array size and
computing precision can be finished in 30 minutes" (on a Xeon server);
"each DCIM design can be generated within one hour".

Our analytical estimation models make both dramatically faster; the
bench records actual wall-clock for the paper-sized configuration
(Wstore=64K, full NSGA-II) and asserts the paper's budgets hold with
huge margin.
"""

import time
import timeit

from repro.core.spec import DcimSpec, DesignPoint
from repro.dse import DesignSpaceExplorer, NSGA2Config
from repro.dse.problem import DcimProblem, objectives_of
from repro.layout import PnrFlow
from repro.reporting import ascii_table
from repro.rtl import generate_rtl
from repro.tech import GENERIC28


def full_ga_run():
    explorer = DesignSpaceExplorer(
        config=NSGA2Config(population_size=64, generations=60, seed=0)
    )
    return explorer.explore(DcimSpec(wstore=64 * 1024, precision="INT8"))


def _engine_vs_scalar():
    """Time the batch engine against the seed scalar loop (full space).

    Returns (rows, speedup) with the batch result asserted bit-identical
    to the scalar loop first — a wrong-but-fast engine must fail here.
    """
    problem = DcimProblem(DcimSpec(wstore=64 * 1024, precision="INT8"))
    genomes = problem.codec.enumerate()
    codec, lib = problem.codec, problem.library

    def scalar_loop():
        return [objectives_of(codec.decode(g).macro_cost(lib)) for g in genomes]

    def batch_eval():
        return problem.evaluate_batch(genomes)

    assert batch_eval() == scalar_loop()  # also warms the component memo
    t_scalar = min(timeit.repeat(scalar_loop, number=1, repeat=5))
    t_batch = min(timeit.repeat(batch_eval, number=1, repeat=5))
    speedup = t_scalar / t_batch
    rows = [
        (f"evaluation core: scalar loop ({len(genomes)} genomes)", "-",
         f"{t_scalar * 1e3:.2f} ms"),
        (f"evaluation core: batch engine [{problem.engine.backend}]",
         ">= 3x vs scalar", f"{t_batch * 1e3:.2f} ms ({speedup:.1f}x)"),
    ]
    return rows, speedup


def test_dse_runtime_budget(record):
    start = time.perf_counter()
    result = full_ga_run()
    elapsed = time.perf_counter() - start
    assert elapsed < 30 * 60  # the paper's 30-minute budget
    design = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8)
    gen_start = time.perf_counter()
    rtl = generate_rtl(design)
    layout = PnrFlow(GENERIC28).run(design)
    gen_elapsed = time.perf_counter() - gen_start
    assert gen_elapsed < 60 * 60  # the paper's 1-hour budget
    engine_rows, speedup = _engine_vs_scalar()
    record(
        "dse_runtime",
        "Runtime vs the paper's budgets:\n"
        + ascii_table(
            ["stage", "budget", "measured"],
            [
                ("DSE (64K INT8, NSGA-II 64x60)", "30 min",
                 f"{elapsed:.2f} s ({result.evaluations} evals)"),
                ("generation (RTL + P&R)", "60 min",
                 f"{gen_elapsed * 1e3:.1f} ms ({len(rtl.modules)} modules, "
                 f"{layout.area_mm2:.3f} mm2)"),
            ]
            + engine_rows,
        ),
    )
    assert speedup >= 3.0


def test_batch_engine_benchmark(benchmark):
    problem = DcimProblem(DcimSpec(wstore=64 * 1024, precision="INT8"))
    genomes = problem.codec.enumerate()
    problem.evaluate_batch(genomes)  # warm the component memo
    result = benchmark(problem.evaluate_batch, genomes)
    assert len(result) == len(genomes)


def test_dse_benchmark(benchmark):
    result = benchmark(full_ga_run)
    assert len(result.points) > 20


def test_generation_benchmark(benchmark):
    design = DesignPoint(precision="BF16", n=64, h=128, l=64, k=8)

    def generate():
        return generate_rtl(design), PnrFlow(GENERIC28).run(design)

    rtl, layout = benchmark(generate)
    assert layout.area_mm2 > 0
