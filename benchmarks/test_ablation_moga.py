"""Ablation: MOGA (NSGA-II) vs single-objective scalarisation & random.

Section II-B of the paper argues that transforming the multi-objective
problem into single-objective scalarisations "introduces a fixed human
experience" and cannot serve versatile requirements.  This bench
quantifies that: with comparable evaluation budgets, the weighted-sum
baseline recovers a small, poorly-spread subset of the frontier, random
search an unreliable middle ground, while NSGA-II approaches the exact
front.
"""

import numpy as np
import pytest

from repro.core.pareto import hypervolume, normalize_objectives
from repro.core.spec import DcimSpec
from repro.dse import (
    DesignSpaceExplorer,
    NSGA2Config,
    random_search,
    weighted_sum_search,
)
from repro.dse.problem import objectives_of
from repro.reporting import ascii_table

SPEC = DcimSpec(wstore=64 * 1024, precision="INT8")
BUDGET = 250  # evaluations granted to every method


@pytest.fixture(scope="module")
def exact():
    return DesignSpaceExplorer().explore_exhaustive(SPEC)


@pytest.fixture(scope="module")
def methods(exact):
    # Many cheap generations: memoisation keeps *unique* evaluations
    # within the budget while selection pressure keeps improving.
    ga_result = DesignSpaceExplorer(
        config=NSGA2Config(population_size=32, generations=30, seed=0)
    ).explore(SPEC)
    assert ga_result.evaluations <= BUDGET * 1.1
    ga = ga_result
    rs = random_search(SPEC, budget=BUDGET, seed=0)
    ws = weighted_sum_search(
        SPEC, n_weight_vectors=10, samples_per_vector=BUDGET, seed=0
    )
    return {
        "NSGA-II": [(p.n, p.h, p.l, p.k) for p in ga.points],
        "random": [(p.n, p.h, p.l, p.k) for p in rs],
        "weighted-sum": [(p.n, p.h, p.l, p.k) for p in ws],
    }


def front_hv(keys, spec=SPEC):
    from repro.core.spec import DesignPoint

    points = [
        DesignPoint(precision=spec.precision, n=n, h=h, l=l, k=k)
        for n, h, l, k in keys
    ]
    objs = np.array([objectives_of(p.macro_cost()) for p in points])
    return points, objs


def test_moga_ablation_table(exact, methods, record):
    truth = {(p.n, p.h, p.l, p.k) for p in exact.points}
    ref_unit_basis = np.asarray(exact.objectives)
    lo = ref_unit_basis.min(axis=0)
    hi = ref_unit_basis.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    ref_hv = hypervolume(normalize_objectives(ref_unit_basis), [1.1] * 4)
    rows = []
    for name, keys in methods.items():
        _, objs = front_hv(keys)
        unit = (objs - lo) / span
        unit = np.clip(unit, 0.0, 1.0)
        hv = hypervolume(unit, [1.1] * 4)
        recall = len(set(keys) & truth) / len(truth)
        rows.append((name, len(keys), f"{recall:.2f}", f"{hv / ref_hv:.3f}"))
    rows.append(("exact", len(truth), "1.00", "1.000"))
    record(
        "ablation_moga",
        f"MOGA vs baselines at equal budget (~{BUDGET} evaluations):\n"
        + ascii_table(["method", "front size", "recall", "HV ratio"], rows),
    )


def test_weighted_sum_collapses_front(exact, methods):
    assert len(methods["weighted-sum"]) < len(exact.points) / 3


def test_moga_beats_weighted_sum_on_recall(exact, methods):
    # In this ~300-point space random search at equal budget is genuinely
    # competitive (it nearly enumerates); the paper's claim under test is
    # the MOGA-vs-scalarisation gap, which is enormous.
    truth = {(p.n, p.h, p.l, p.k) for p in exact.points}

    def recall(keys):
        return len(set(keys) & truth) / len(truth)

    assert recall(methods["NSGA-II"]) > 5 * recall(methods["weighted-sum"])
    assert recall(methods["NSGA-II"]) > 0.7


def test_baseline_benchmark(benchmark):
    result = benchmark(random_search, SPEC, 100, 0)
    assert result
