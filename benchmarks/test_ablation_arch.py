"""Ablations on architecture/model design choices from DESIGN.md.

1. **L sharing**: larger L packs more weights per compute unit (area
   per stored weight drops) but serialises reuse — density vs
   throughput.
2. **Pipelining**: the macro delay is the max pipeline stage (the shift
   accumulator's registers cut the path); an unpipelined design would
   pay the *sum* of stages.
3. **FP overhead decomposition**: where the pre-aligned FP macro spends
   its extra area relative to INT8.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.reporting import ascii_table
from repro.tech import GENERIC28


@pytest.fixture(scope="module")
def l_sweep():
    # Wstore fixed at 64K INT8: N*H*L = 512K with N=64 -> H*L = 8192.
    out = []
    for l, h in ((1, 8192 // 1), (4, 2048), (16, 512), (64, 128)):
        design = DesignPoint(precision="INT8", n=64, h=h, l=l, k=8)
        assert design.wstore == 64 * 1024
        out.append((l, h, design.metrics(GENERIC28)))
    return out


def test_l_sharing_table(l_sweep, record):
    rows = [
        (
            l,
            h,
            f"{m.layout_area_mm2:.3f}",
            f"{m.layout_area_mm2 * 1e6 / (64 * 1024):.1f}",
            f"{m.tops:.2f}",
        )
        for l, h, m in l_sweep
    ]
    record(
        "ablation_l_sharing",
        "L-sharing ablation (INT8, Wstore=64K, N=64, k=8):\n"
        + ascii_table(
            ["L", "H", "area mm2", "um2/weight", "peak TOPS"], rows
        ),
    )


def test_density_improves_with_l(l_sweep):
    per_weight = [m.layout_area_mm2 / (64 * 1024) for _, _, m in l_sweep]
    assert per_weight == sorted(per_weight, reverse=True)


def test_throughput_drops_with_l(l_sweep):
    tops = [m.tops for _, _, m in l_sweep]
    assert tops == sorted(tops, reverse=True)


class TestPipelining:
    def test_max_vs_sum_of_stages(self, record):
        design = DesignPoint(precision="BF16", n=64, h=1024, l=8, k=8)
        cost = design.macro_cost()
        pipelined = cost.delay
        unpipelined = sum(cost.stage_delays.values())
        speedup = unpipelined / pipelined
        rows = [
            (stage, f"{GENERIC28.delay_ns(d):.2f}")
            for stage, d in cost.stage_delays.items()
        ]
        rows.append(("pipelined period (max)", f"{GENERIC28.delay_ns(pipelined):.2f}"))
        rows.append(("unpipelined (sum)", f"{GENERIC28.delay_ns(unpipelined):.2f}"))
        record(
            "ablation_pipelining",
            f"Pipeline ablation (BF16 64K): {speedup:.2f}x clock speedup\n"
            + ascii_table(["stage", "delay ns"], rows),
        )
        assert speedup > 1.2
        assert cost.critical_stage == "array"


class TestFpOverhead:
    def test_fp_overhead_decomposition(self, record):
        int8 = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8)
        bf16 = DesignPoint(precision="BF16", n=64, h=128, l=64, k=8)
        ci, cf = int8.macro_cost(), bf16.macro_cost()
        fp_only = [
            (name, f"{GENERIC28.area_mm2(c.area) * 1e3:.2f}")
            for name, c in cf.breakdown.items()
            if name not in ci.breakdown
        ]
        overhead = cf.area / ci.area - 1
        record(
            "ablation_fp_overhead",
            f"FP-only blocks (BF16 vs INT8 overhead {overhead * 100:.1f}%):\n"
            + ascii_table(["block", "area 1e-3 mm2"], fp_only),
        )
        assert {"prealign", "exponent_regs", "int_to_fp"} == {n for n, _ in fp_only}
        assert overhead < 0.25


def test_l_sweep_benchmark(benchmark):
    def evaluate():
        return [
            DesignPoint(precision="INT8", n=64, h=8192 // l, l=l, k=8).macro_cost()
            for l in (1, 4, 16, 64)
        ]

    costs = benchmark(evaluate)
    assert len(costs) == 4
