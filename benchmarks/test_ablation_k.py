"""Ablation: the bit-serial slice width ``k`` (Fig. 3 trade-off).

"The smaller k is, the smaller the area of digital circuits in the
DCIM array.  However, the number of computation cycles Bx/k increases,
which in turn reduces the throughput."  Regenerated over the full k
range for a fixed 64K INT8 array shape.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.reporting import ascii_table
from repro.tech import GENERIC28

SHAPE = {"n": 64, "h": 1024, "l": 8}  # Wstore = 64K at INT8


@pytest.fixture(scope="module")
def sweep():
    out = []
    for k in (1, 2, 4, 8):
        design = DesignPoint(precision="INT8", k=k, **SHAPE)
        out.append((k, design.metrics(GENERIC28), design.macro_cost()))
    return out


def test_k_tradeoff_table(sweep, record):
    rows = [
        (
            k,
            cost.cycles_per_pass,
            f"{m.layout_area_mm2:.3f}",
            f"{m.tops:.2f}",
            f"{m.tops_per_watt:.1f}",
            f"{m.delay_ns:.2f}",
        )
        for k, m, cost in sweep
    ]
    record(
        "ablation_k",
        "k ablation (INT8, N=64 H=1024 L=8, Wstore=64K):\n"
        + ascii_table(
            ["k", "cycles/pass", "area mm2", "TOPS", "TOPS/W", "delay ns"], rows
        ),
    )


def test_area_monotone_in_k(sweep):
    areas = [m.layout_area_mm2 for _, m, _ in sweep]
    assert areas == sorted(areas)


def test_cycles_inverse_in_k(sweep):
    cycles = [c.cycles_per_pass for _, _, c in sweep]
    assert cycles == [8, 4, 2, 1]


def test_throughput_monotone_in_k(sweep):
    tops = [m.tops for _, m, _ in sweep]
    assert tops == sorted(tops)


def test_k_sweep_benchmark(benchmark):
    def evaluate_all():
        return [
            DesignPoint(precision="INT8", k=k, **SHAPE).metrics(GENERIC28)
            for k in (1, 2, 4, 8)
        ]

    metrics = benchmark(evaluate_all)
    assert len(metrics) == 4
