"""Cache pipeline speedup gate: the point of the batched-cache PR.

One GA generation (512 genomes) used to cost the cache tier N disk
round trips and N commits: the pre-PR ``_SqliteStore`` ran a plain
rollback-journal connection and committed (fsync!) after every
``put``.  The batched pipeline pushes the same generation through one
chunked ``SELECT ... IN`` and one ``executemany`` transaction on a
WAL-mode connection, and must be at least **5x** faster than the
per-key reference — in practice the gap is one-to-two orders of
magnitude because the reference pays one fsync per genome.

Key derivation is reported alongside: :class:`GenomeKeyer` hashes the
canonical-JSON context prefix once and must stay bit-identical to
:func:`evaluation_key` while skipping the per-genome recanonicalise.

Measured rows land in ``results/cache_pipeline.txt``.
"""

import hashlib
import json
import sqlite3
import timeit

from repro.core.spec import DcimSpec
from repro.obs.metrics import NULL_REGISTRY
from repro.reporting import ascii_table
from repro.service.cache import (
    EvaluationCache,
    GenomeKeyer,
    evaluation_key,
    problem_fingerprint,
    stable_hash,
)
from repro.tech.cells import CellLibrary

GENERATION = 512  # genomes per generation batch
OBJECTIVES = 4  # [A, D, E, -T]
SPEC = DcimSpec(wstore=8192, precision="INT8")
LIB = CellLibrary.default()


class _PrePrStore:
    """The pre-PR per-key SQLite tier, preserved as the reference.

    Plain rollback-journal connection, one ``SELECT`` per get and one
    ``INSERT``+``commit`` per put — exactly what
    ``_SqliteStore.get``/``put`` did before the batched pipeline.
    """

    def __init__(self, path):
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS evaluations ("
            "key TEXT PRIMARY KEY, objectives TEXT NOT NULL)"
        )
        self._conn.commit()

    def get(self, key):
        row = self._conn.execute(
            "SELECT objectives FROM evaluations WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else tuple(json.loads(row[0]))

    def put(self, key, objectives):
        self._conn.execute(
            "INSERT OR REPLACE INTO evaluations (key, objectives) VALUES (?, ?)",
            (key, json.dumps(list(objectives))),
        )
        self._conn.commit()

    def close(self):
        self._conn.close()


def _generation():
    keys = [
        hashlib.sha256(f"genome-{i}".encode()).hexdigest()
        for i in range(GENERATION)
    ]
    values = [
        tuple(float(i + axis) for axis in range(OBJECTIVES))
        for i in range(GENERATION)
    ]
    return keys, dict(zip(keys, values))


def _best(fn, repeat=5):
    return min(timeit.repeat(fn, number=1, repeat=repeat))


def test_batched_sqlite_generation_speedup(tmp_path, record):
    keys, entries = _generation()

    reference = _PrePrStore(tmp_path / "reference.sqlite")
    batched = EvaluationCache(
        tmp_path / "batched.sqlite",
        backend="sqlite",
        max_memory_entries=1,  # force every lookup through the disk tier
        registry=NULL_REGISTRY,
    )

    # Warm both tiers, then check the batched path returns the same data.
    for key, value in entries.items():
        reference.put(key, value)
    batched.put_many(entries)
    assert batched.get_many(keys) == [entries[k] for k in keys]
    assert [reference.get(k) for k in keys] == [entries[k] for k in keys]

    def per_key_generation():
        for key in keys:
            reference.get(key)
        for key, value in entries.items():
            reference.put(key, value)

    def batched_generation():
        batched.get_many(keys)
        batched.put_many(entries)

    t_ref = _best(per_key_generation, repeat=3)  # fsync-bound; 3 is plenty
    t_batch = _best(batched_generation)
    speedup = t_ref / t_batch

    # Key derivation on the same generation, bit-identical by construction.
    genomes = [(i % 8, i % 5, i % 3, i % 13) for i in range(GENERATION)]
    context = stable_hash(problem_fingerprint(SPEC, LIB))
    keyer = GenomeKeyer.for_problem(SPEC, LIB)
    assert [keyer(g) for g in genomes] == [
        evaluation_key(g, SPEC, LIB) for g in genomes
    ]
    t_full = _best(lambda: [evaluation_key(g, SPEC, LIB) for g in genomes])
    t_ctx = _best(
        lambda: [
            stable_hash({"genome": list(g), "context": context}) for g in genomes
        ]
    )
    t_keyer = _best(lambda: [keyer(g) for g in genomes])

    label = f"{GENERATION} genomes x {OBJECTIVES} objectives"
    record(
        "cache_pipeline",
        f"Cache pipeline, one generation ({label}):\n"
        + ascii_table(
            ["path", "gate", "measured"],
            [
                (
                    "per-key sqlite (pre-PR reference)",
                    "-",
                    f"{t_ref * 1e3:.2f} ms",
                ),
                (
                    "batched sqlite (get_many+put_many)",
                    ">= 5x vs per-key",
                    f"{t_batch * 1e3:.2f} ms ({speedup:.1f}x)",
                ),
            ],
        )
        + "\n\nKey derivation, one generation:\n"
        + ascii_table(
            ["path", "gate", "measured"],
            [
                ("evaluation_key (full recompute)", "-", f"{t_full * 1e3:.2f} ms"),
                ("context-cached stable_hash", "-", f"{t_ctx * 1e3:.2f} ms"),
                (
                    "GenomeKeyer (prefix-hashed)",
                    "bit-identical",
                    f"{t_keyer * 1e3:.2f} ms "
                    f"({t_full / t_keyer:.1f}x vs full, "
                    f"{t_ctx / t_keyer:.1f}x vs cached)",
                ),
            ],
        ),
    )
    reference.close()
    batched.close()
    assert speedup >= 5.0


def test_write_behind_coalesces_commits(tmp_path):
    """Write-behind buffers N puts into one flush transaction."""
    keys, entries = _generation()
    cache = EvaluationCache(
        tmp_path / "wb.sqlite",
        backend="sqlite",
        flush_every=GENERATION,
        registry=NULL_REGISTRY,
    )
    for key, value in entries.items():
        cache.put(key, value)
    assert cache.pending_writes == 0  # the 512th put triggered the flush
    cache.close()
    with EvaluationCache(tmp_path / "wb.sqlite", registry=NULL_REGISTRY) as back:
        assert len(back) == GENERATION


def test_batched_generation_benchmark(benchmark, tmp_path):
    keys, entries = _generation()
    cache = EvaluationCache(
        tmp_path / "bench.sqlite",
        backend="sqlite",
        max_memory_entries=1,
        registry=NULL_REGISTRY,
    )
    cache.put_many(entries)

    def one_generation():
        cache.get_many(keys)
        cache.put_many(entries)

    benchmark(one_generation)
    cache.close()
