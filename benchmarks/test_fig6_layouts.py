"""Fig. 6: generated macro layouts for INT8 and BF16 at 8K weights.

Paper numbers (both macros: N=32, L=16, H=128, Wstore=8K, SRAM=64Kbit):

* Fig. 6(a) INT8: 343 um x 229 um, area 0.079 mm^2.
* Fig. 6(b) BF16: 367 um x 231 um, area 0.085 mm^2, of which the
  pre-aligned-based circuits are only 0.006 mm^2.

The bench runs the full generation path (RTL + mock P&R) for both
designs and compares die dimensions/areas with the published values.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.layout import PnrFlow
from repro.reporting import ascii_table
from repro.rtl import generate_rtl
from repro.tech import GENERIC28

INT8_DESIGN = DesignPoint(precision="INT8", n=32, h=128, l=16, k=8)
BF16_DESIGN = DesignPoint(precision="BF16", n=32, h=128, l=16, k=8)

PAPER = {
    "INT8": {"width": 343.0, "height": 229.0, "area": 0.079},
    "BF16": {"width": 367.0, "height": 231.0, "area": 0.085, "prealign": 0.006},
}


def generate_layout(design):
    flow = PnrFlow(GENERIC28)
    return generate_rtl(design), flow.run(design)


@pytest.fixture(scope="module")
def layouts():
    return {
        "INT8": generate_layout(INT8_DESIGN),
        "BF16": generate_layout(BF16_DESIGN),
    }


def test_fig6_areas_match_paper(layouts, record):
    rows = []
    for name, (rtl, layout) in layouts.items():
        paper = PAPER[name]
        rows.append(
            (
                name,
                f"{paper['width']:.0f}x{paper['height']:.0f}",
                f"{layout.width_um:.0f}x{layout.height_um:.0f}",
                f"{paper['area']:.3f}",
                f"{layout.area_mm2:.4f}",
                len(rtl.modules),
            )
        )
        assert layout.area_mm2 == pytest.approx(paper["area"], rel=0.10)
    record(
        "fig6_layouts",
        "Fig. 6 paper-vs-measured (8K weights, N=32 L=16 H=128):\n"
        + ascii_table(
            ["precision", "paper WxH um", "ours WxH um",
             "paper mm2", "ours mm2", "rtl modules"],
            rows,
        ),
    )


def test_fig6_sram_capacity(layouts):
    # Both macros hold 8K weights in 64 Kbit of SRAM (Fig. 6 caption).
    for design in (INT8_DESIGN, BF16_DESIGN):
        assert design.wstore == 8 * 1024
        assert design.sram_bits == 64 * 1024


def test_fig6_prealign_overhead(layouts):
    # The pre-aligned circuits are a small add-on: ~0.006 mm^2 of 0.085.
    cost = BF16_DESIGN.macro_cost()
    prealign_mm2 = (
        GENERIC28.area_mm2(cost.breakdown["prealign"].area) / GENERIC28.utilization
    )
    assert prealign_mm2 < 0.012  # same order as the paper's 0.006
    _, bf16 = layouts["BF16"]
    _, int8 = layouts["INT8"]
    assert bf16.area_mm2 / int8.area_mm2 == pytest.approx(
        PAPER["BF16"]["area"] / PAPER["INT8"]["area"], rel=0.05
    )


def test_fig6_generation_benchmark(benchmark):
    """'Each DCIM design can be generated within one hour' — ours in ms."""
    rtl, layout = benchmark(generate_layout, INT8_DESIGN)
    assert layout.area_mm2 > 0
    assert rtl.top.startswith("dcim_macro_int")
