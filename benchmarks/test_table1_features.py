"""Table I: feature comparison with other CIM design flows.

Qualitative table reproduced verbatim from the paper, with the
SEGA-DCIM column checked against what this reproduction actually
implements (each claim is asserted against the codebase).
"""

from repro.dse import SELECTION_STRATEGIES
from repro.reporting import ascii_table

HEADERS = ["Entry", "EasyACIM [15]", "AutoDCIM [16]", "SEGA-DCIM"]
ROWS = [
    ("Design type", "Analog", "Digital", "Digital"),
    ("Support precision", "INT", "INT", "INT & Float"),
    ("Estimation model", "Yes", "No", "Yes"),
    ("Design space", "Pareto frontier", "Unoptimized", "Pareto frontier"),
    ("Determination of trade-offs", "Automatic", "User-defined", "Automatic"),
]


def render_table1() -> str:
    return ascii_table(HEADERS, ROWS)


def test_table1_claims_hold_in_this_repo(record):
    """The SEGA-DCIM column is backed by actual code in this repo."""
    from repro import STANDARD_PRECISIONS
    from repro.dse.explorer import DesignSpaceExplorer

    # "INT & Float" precision support.
    kinds = {p.kind for p in STANDARD_PRECISIONS.values()}
    assert kinds == {"int", "float"}
    # "Estimation model: Yes".
    from repro.model import int_macro_cost, fp_macro_cost  # noqa: F401
    # "Design space: Pareto frontier" + "Automatic trade-offs".
    assert hasattr(DesignSpaceExplorer, "explore")
    assert "knee" in SELECTION_STRATEGIES
    record("table1_features", render_table1())


def test_table1_render_benchmark(benchmark):
    table = benchmark(render_table1)
    assert "SEGA-DCIM" in table
