"""Instrumentation overhead on the batch-evaluation hot path.

The operations layer (Issue 6) promises that metrics stay cheap enough
to leave on everywhere: executors resolve their metric handles once per
registry identity and flush one batched histogram transaction (all the
per-chunk timings) plus one counter increment per batch.  This bench
times the same
evaluation workload against the real process-global registry and
against :data:`~repro.obs.metrics.NULL_REGISTRY` (all instruments
no-ops) and asserts the relative overhead stays under 3%.

The tracing layer (Issue 9) makes the same promise: a fully sampled
:class:`~repro.obs.trace.Tracer` (every trace kept) versus
:data:`~repro.obs.trace.NULL_TRACER` on the same workload must also
stay under the 3% gate.
"""

import statistics
import timeit

from repro.core.spec import DcimSpec
from repro.dse.problem import DcimProblem
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, set_registry
from repro.obs.trace import NULL_TRACER, Tracer, get_tracer, set_tracer
from repro.reporting import ascii_table
from repro.service.executor import SerialExecutor

#: Allowed slowdown of the instrumented hot path (acceptance criterion).
MAX_OVERHEAD = 0.03


def _interleaved_overhead(
    evaluate, real, rounds: int = 160, null=NULL_REGISTRY, switch=set_registry
):
    """Median paired overhead ratio plus the best real/null times.

    Timing all real repeats and then all null repeats lets one
    background-load burst land entirely on one side and swing the ratio
    by tens of percent (this box is a single shared core), so each
    round times exactly one real and one null run back to back — the
    tightest possible pairing, a few ms, shorter than typical load
    bursts — alternating which goes first so a systematic
    first-position penalty cannot bill to one mode.  The reported
    overhead is the *median* of the per-round ratios: rounds wrecked by
    a burst cannot move it.  Each sample averages three runs so
    single-run scheduler jitter does not dominate the per-round ratio.
    ``switch``/``null`` select which global the modes toggle (metrics
    registry by default, tracer for the tracing gate).
    """
    def sample(mode):
        switch(mode)
        evaluate()  # re-resolve instrument handles outside the timed run
        return timeit.timeit(evaluate, number=3) / 3

    ratios, t_real, t_null = [], float("inf"), float("inf")
    for round_index in range(rounds):
        if round_index % 2 == 0:
            r, n = sample(real), sample(null)
        else:
            n, r = sample(null), sample(real)
        ratios.append(r / n)
        t_real, t_null = min(t_real, r), min(t_null, n)
    return statistics.median(ratios) - 1.0, t_real, t_null


def test_instrumentation_overhead(record):
    problem = DcimProblem(DcimSpec(wstore=64 * 1024, precision="INT8"))
    genomes = problem.codec.enumerate()
    # Small chunks maximise per-chunk instrument traffic; 32 is the
    # finest granularity any real configuration runs at (serial default
    # is one chunk per batch, pools aim at n / (4 * workers)).
    chunk_size = 32
    executor = SerialExecutor(chunk_size=chunk_size)

    def evaluate():
        return executor.evaluate_batch(problem, genomes)

    real = MetricsRegistry()
    previous = set_registry(real)
    try:
        baseline = evaluate()  # warms the engine memo for both modes
        set_registry(NULL_REGISTRY)
        assert evaluate() == baseline  # instruments never touch results
        overhead, t_real, t_null = _interleaved_overhead(evaluate, real)
    finally:
        set_registry(previous)

    chunks = (len(genomes) + chunk_size - 1) // chunk_size
    rows = [
        (f"null registry ({len(genomes)} genomes, {chunks} chunks)",
         "-", f"{t_null * 1e3:.2f} ms"),
        ("process-global registry", f"< {MAX_OVERHEAD:.0%} overhead",
         f"{t_real * 1e3:.2f} ms ({overhead:+.1%})"),
    ]
    record(
        "obs_overhead",
        ascii_table(["configuration", "budget", "measured"], rows),
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:+.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (real {t_real * 1e3:.2f} ms vs "
        f"null {t_null * 1e3:.2f} ms)"
    )


def test_tracing_overhead(record):
    """Fully sampled tracing vs NULL_TRACER on the evaluation hot path."""
    problem = DcimProblem(DcimSpec(wstore=64 * 1024, precision="INT8"))
    genomes = problem.codec.enumerate()
    chunk_size = 32  # matches the metrics gate: finest real granularity
    executor = SerialExecutor(chunk_size=chunk_size)

    def evaluate():
        # A root span makes the chunk spans record (the executor only
        # reports spans under an ambient trace) — exactly the traced
        # campaign shape, one span per chunk.
        with get_tracer().span("bench", root_if_orphan=True):
            return executor.evaluate_batch(problem, genomes)

    # A bounded ring with every trace kept: the worst-case retention.
    real = Tracer(sample_ratio=1.0, max_traces=8)
    previous_tracer = get_tracer()
    previous_registry = set_registry(NULL_REGISTRY)  # isolate tracing cost
    try:
        set_tracer(real)
        baseline = evaluate()
        set_tracer(NULL_TRACER)
        assert evaluate() == baseline  # spans never touch results
        overhead, t_real, t_null = _interleaved_overhead(
            evaluate, real, null=NULL_TRACER, switch=set_tracer
        )
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)

    chunks = (len(genomes) + chunk_size - 1) // chunk_size
    rows = [
        (f"null tracer ({len(genomes)} genomes, {chunks} chunks)",
         "-", f"{t_null * 1e3:.2f} ms"),
        ("sampled tracer (ratio 1.0)", f"< {MAX_OVERHEAD:.0%} overhead",
         f"{t_real * 1e3:.2f} ms ({overhead:+.1%})"),
    ]
    record(
        "trace_overhead",
        ascii_table(["configuration", "budget", "measured"], rows),
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:+.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (traced {t_real * 1e3:.2f} ms vs "
        f"null {t_null * 1e3:.2f} ms)"
    )
