"""Ablation: the paper's carry-ripple adder choice vs carry-lookahead.

Table II fixes "the N-bit adder employs the carry-ripple structure."
This bench swaps in a first-order carry-lookahead model for the adder
trees of a 64K INT8 macro shape and reports how the clock period and
area would move — quantifying what the ripple choice costs and saves.
"""

import pytest

from repro.model.components import adder_tree
from repro.model.logic import adder, adder_cla
from repro.reporting import ascii_table
from repro.tech import GENERIC28
from repro.tech.cells import CellLibrary

LIB = CellLibrary.default()
SHAPES = [(64, 8), (128, 8), (512, 8), (1024, 8), (2048, 8)]


@pytest.fixture(scope="module")
def sweep():
    out = []
    for h, k in SHAPES:
        ripple = adder_tree(LIB, h, k)
        cla = adder_tree(LIB, h, k, adder_fn=adder_cla)
        out.append((h, k, ripple, cla))
    return out


def test_adder_ablation_table(sweep, record):
    rows = [
        (
            f"H={h}",
            f"{GENERIC28.delay_ns(ripple.delay):.2f}",
            f"{GENERIC28.delay_ns(cla.delay):.2f}",
            f"{ripple.delay / cla.delay:.2f}x",
            f"{cla.area / ripple.area:.2f}x",
        )
        for h, k, ripple, cla in sweep
    ]
    record(
        "ablation_adder",
        "Ripple (paper) vs carry-lookahead adder trees (k=8):\n"
        + ascii_table(
            ["tree", "ripple ns", "CLA ns", "speedup", "area cost"], rows
        ),
    )


def test_cla_speedup_grows_with_height(sweep):
    speedups = [ripple.delay / cla.delay for _, _, ripple, cla in sweep]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0  # deep trees leave real speed on the table


def test_cla_pays_area(sweep):
    for _, _, ripple, cla in sweep:
        assert cla.area >= ripple.area


def test_single_adder_widths_unchanged_below_group_size(record):
    # The two models agree where lookahead cannot help.
    for n in (1, 2, 4):
        assert adder_cla(LIB, n) == adder(LIB, n)


def test_adder_ablation_benchmark(benchmark):
    def evaluate():
        return [
            adder_tree(LIB, h, k, adder_fn=adder_cla) for h, k in SHAPES
        ]

    costs = benchmark(evaluate)
    assert len(costs) == len(SHAPES)
