"""Ablation: supply voltage and PVT corners.

The paper quotes Fig. 8 efficiencies at 0.9 V; this bench sweeps the
supply (first-order V^2 energy / 1/V delay scaling) and the standard
corners on the 64K INT8 design-A analogue, showing the efficiency/
frequency trade-off a deployment would tune.
"""

import pytest

from repro.core.spec import DesignPoint
from repro.reporting import ascii_table
from repro.tech import GENERIC28, STANDARD_CORNERS, apply_corner

DESIGN = DesignPoint(precision="INT8", n=64, h=128, l=64, k=8)
VOLTAGES = (0.6, 0.72, 0.81, 0.9, 1.0)


@pytest.fixture(scope="module")
def voltage_sweep():
    return {
        v: DESIGN.metrics(GENERIC28.with_voltage(v)) for v in VOLTAGES
    }


def test_voltage_table(voltage_sweep, record):
    rows = [
        (
            f"{v:.2f}",
            f"{m.frequency_ghz:.2f}",
            f"{m.tops:.2f}",
            f"{m.tops_per_watt:.1f}",
            f"{m.power_w * 1e3:.1f}",
        )
        for v, m in voltage_sweep.items()
    ]
    corner_rows = [
        (
            name,
            f"{DESIGN.metrics(apply_corner(GENERIC28, name)).frequency_ghz:.2f}",
            f"{DESIGN.metrics(apply_corner(GENERIC28, name)).tops_per_watt:.1f}",
        )
        for name in sorted(STANDARD_CORNERS)
    ]
    record(
        "ablation_voltage",
        "Voltage sweep (64K INT8 design-A analogue):\n"
        + ascii_table(["V", "GHz", "TOPS", "TOPS/W", "mW"], rows)
        + "\n\nCorners:\n"
        + ascii_table(["corner", "GHz", "TOPS/W"], corner_rows),
    )


def test_efficiency_improves_at_low_voltage(voltage_sweep):
    # TOPS/W ~ 1/V^2.
    assert voltage_sweep[0.6].tops_per_watt > voltage_sweep[0.9].tops_per_watt
    ratio = voltage_sweep[0.6].tops_per_watt / voltage_sweep[0.9].tops_per_watt
    assert ratio == pytest.approx((0.9 / 0.6) ** 2, rel=1e-6)


def test_throughput_drops_at_low_voltage(voltage_sweep):
    assert voltage_sweep[0.6].tops < voltage_sweep[0.9].tops


def test_paper_operating_point_is_nominal(voltage_sweep):
    # Fig. 8's 0.9 V equals the calibration nominal: 22ish TOPS/W.
    assert voltage_sweep[0.9].tops_per_watt == pytest.approx(22.4, rel=0.05)


def test_voltage_benchmark(benchmark):
    def sweep():
        return [
            DESIGN.metrics(GENERIC28.with_voltage(v)) for v in VOLTAGES
        ]

    metrics = benchmark(sweep)
    assert len(metrics) == len(VOLTAGES)
