"""GA kernel speedup gate: the point of the vectorisation PR.

Non-dominated sorting plus crowding on a GA-sized population
(256 individuals, 4 objectives — the paper-scale NSGA-II working set)
must run at least 3x faster through the numpy kernels than through the
pure-Python reference, while returning bit-identical ranks, orders and
crowding values.  The measured rows are appended to
``results/dse_runtime.txt`` next to the evaluation-core speedups.
"""

import random
import struct
import timeit

import pytest

from repro.dse.kernels import HAS_NUMPY, GAKernels
from repro.obs.metrics import NULL_REGISTRY
from repro.reporting import ascii_table

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="speedup gate needs the numpy backend"
)

POPULATION = 256  # parents + offspring of a paper-sized (128) GA
OBJECTIVES = 4  # [A, D, E, -T]
MARKER = "GA kernel sort+crowding"


def _population(seed=0):
    rng = random.Random(seed)
    # Quantised objectives: plenty of exact ties, like real fronts.
    return [
        tuple(round(rng.uniform(0.0, 10.0), 1) for _ in range(OBJECTIVES))
        for _ in range(POPULATION)
    ]


def _sort_and_crowd(kernels, objectives):
    """One generation's bookkeeping: full sort + crowding per front."""
    matrix = kernels.as_matrix(objectives)
    ranks, fronts = kernels.nondominated_sort(matrix)
    out = []
    for front in fronts:
        perm, dist = kernels.crowding(matrix, front)
        out.append((perm, dist))
    return ranks, fronts, out


def _bits(value):
    return struct.pack("<d", float(value))


def _append_section(results_dir, text):
    """Append our section to dse_runtime.txt, replacing a prior one."""
    path = results_dir / "dse_runtime.txt"
    existing = path.read_text() if path.exists() else ""
    if MARKER in existing:
        existing = existing[: existing.index(MARKER)].rstrip() + "\n"
    path.write_text(existing + ("\n" if existing else "") + text + "\n")
    print()
    print(text)


def test_numpy_kernels_speedup(results_dir):
    objectives = _population()
    np_k = GAKernels("numpy", registry=NULL_REGISTRY)
    py_k = GAKernels("python", registry=NULL_REGISTRY)

    # Wrong-but-fast must fail before any timing happens.
    np_ranks, np_fronts, np_crowd = _sort_and_crowd(np_k, objectives)
    py_ranks, py_fronts, py_crowd = _sort_and_crowd(py_k, objectives)
    assert np_ranks == py_ranks
    assert np_fronts == py_fronts
    for (np_perm, np_dist), (py_perm, py_dist) in zip(np_crowd, py_crowd):
        assert np_perm == py_perm
        assert [_bits(v) for v in np_dist] == [_bits(v) for v in py_dist]

    t_python = min(
        timeit.repeat(
            lambda: _sort_and_crowd(py_k, objectives), number=1, repeat=5
        )
    )
    t_numpy = min(
        timeit.repeat(
            lambda: _sort_and_crowd(np_k, objectives), number=1, repeat=5
        )
    )
    speedup = t_python / t_numpy
    label = f"{POPULATION} individuals x {OBJECTIVES} objectives"
    _append_section(
        results_dir,
        f"{MARKER} ({label}):\n"
        + ascii_table(
            ["kernel backend", "gate", "measured"],
            [
                ("python reference", "-", f"{t_python * 1e3:.2f} ms"),
                (
                    "numpy kernels",
                    ">= 3x vs python",
                    f"{t_numpy * 1e3:.2f} ms ({speedup:.1f}x)",
                ),
            ],
        ),
    )
    assert speedup >= 3.0


def test_sort_crowding_benchmark(benchmark):
    objectives = _population()
    kernels = GAKernels("auto", registry=NULL_REGISTRY)
    ranks, fronts, _ = benchmark(_sort_and_crowd, kernels, objectives)
    assert len(ranks) == POPULATION
    assert sum(len(f) for f in fronts) == POPULATION
