"""Bit-exact NN inference on the behavioural macro models.

Runs a small two-layer MLP classifier on synthetic data three ways —
float64 reference, INT8 DCIM macro (sign-magnitude passes), and BF16
pre-aligned DCIM macro — using the *same* cycle-level models that the
gate-level netlists were verified against.  This is the end-to-end
accuracy story for the compiler's two architectures.

Usage::

    python examples/mlp_bitexact_inference.py
"""

import numpy as np

from repro import DesignPoint
from repro.func import FpMacroModel, IntMacroModel
from repro.reporting import ascii_table


def make_dataset(n=256, dim=16, classes=4, seed=0):
    """Gaussian blobs: linearly separable-ish synthetic classification."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=2.0, size=(classes, dim))
    labels = rng.integers(0, classes, size=n)
    x = centers[labels] + rng.normal(scale=0.7, size=(n, dim))
    return x, labels


def make_mlp(x, labels, hidden=32, classes=4, seed=1):
    """Random-feature MLP: random w1, least-squares-trained w2."""
    rng = np.random.default_rng(seed)
    w1 = rng.normal(scale=0.5, size=(x.shape[1], hidden))
    features = np.maximum(x @ w1, 0.0)
    onehot = np.eye(classes)[labels]
    w2, *_ = np.linalg.lstsq(features, onehot, rcond=None)
    return w1, w2


def reference_forward(x, w1, w2):
    return np.maximum(x @ w1, 0.0) @ w2


def int8_forward(x, w1, w2):
    """Quantise to signed INT8 and run each layer on the integer macro."""
    def quant(a):
        scale = np.abs(a).max() / 127.0
        return np.clip(np.rint(a / scale), -127, 127).astype(np.int64), scale

    w1_q, s_w1 = quant(w1)
    w2_q, s_w2 = quant(w2)
    m1 = IntMacroModel(DesignPoint(precision="INT8", n=w1.shape[1] * 8,
                                   h=w1.shape[0], l=1, k=8))
    m2 = IntMacroModel(DesignPoint(precision="INT8", n=w2.shape[1] * 8,
                                   h=w2.shape[0], l=1, k=8))
    outputs = []
    for row in x:
        x_q, s_x = quant(row)
        h = m1.matvec_signed(w1_q, x_q).astype(float) * (s_w1 * s_x)
        h = np.maximum(h, 0.0)
        h_q, s_h = quant(h)
        y = m2.matvec_signed(w2_q, h_q).astype(float) * (s_w2 * s_h)
        outputs.append(y)
    return np.array(outputs)


def bf16_forward(x, w1, w2):
    """Run each layer on the pre-aligned BF16 macro."""
    m1 = FpMacroModel(DesignPoint(precision="BF16", n=w1.shape[1] * 8,
                                  h=w1.shape[0], l=1, k=8))
    m1.load_weights(w1)
    m2 = FpMacroModel(DesignPoint(precision="BF16", n=w2.shape[1] * 8,
                                  h=w2.shape[0], l=1, k=8))
    m2.load_weights(w2)
    outputs = []
    for row in x:
        h = np.maximum(m1.matvec(row), 0.0)
        outputs.append(m2.matvec(h))
    return np.array(outputs)


def main() -> None:
    x, labels = make_dataset()
    w1, w2 = make_mlp(x, labels)

    ref = reference_forward(x, w1, w2)
    ref_acc = float((ref.argmax(axis=1) == labels).mean())

    rows = [("float64 reference", f"{ref_acc:.3f}", "-", "-")]
    for name, forward in (("INT8 macro", int8_forward), ("BF16 macro", bf16_forward)):
        out = forward(x, w1, w2)
        acc = float((out.argmax(axis=1) == labels).mean())
        agreement = float((out.argmax(axis=1) == ref.argmax(axis=1)).mean())
        err = float(np.median(np.abs(out - ref) / np.maximum(np.abs(ref), 1e-9)))
        rows.append((name, f"{acc:.3f}", f"{agreement:.3f}", f"{err:.2e}"))

    print("Two-layer MLP, 256 samples, 4 classes "
          "(cycle-level macro models, bit-exact datapaths):")
    print(ascii_table(
        ["engine", "accuracy", "argmax agreement", "median rel err"], rows
    ))
    print("\nBoth DCIM engines track the float64 classifier; BF16 keeps\n"
          "near-reference logits while INT8 absorbs quantisation error —\n"
          "the accuracy side of the paper's multi-precision argument.")


if __name__ == "__main__":
    main()
