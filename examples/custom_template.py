"""Extending the compiler: custom cell library + custom architecture.

SEGA-DCIM's template-based approach claims easy extension to new DCIM
structures.  This example demonstrates both extension points:

1. a *customized cell library* (Fig. 4 input) loaded from the
   mini-liberty format, with a low-power full adder, and
2. a *new architecture template* registered alongside the built-ins: a
   double-buffered integer macro with a second input buffer so the next
   vector loads while the current one computes.

Usage::

    python examples/custom_template.py
"""

from repro import DcimSpec, DesignPoint, SegaDcim
from repro.dse import NSGA2Config
from repro.rtl import register_template, available_templates
from repro.rtl.generator import IntMacroTemplate, RtlBundle
from repro.rtl.modules import generate_input_buffer
from repro.tech import load_library

LOW_POWER_LIB = """
library (lowpower) {
  cell (NOR)  { area: 1.0; delay: 1.2; energy: 0.8; }
  cell (OR)   { area: 1.3; delay: 1.2; energy: 1.8; }
  cell (MUX2) { area: 2.2; delay: 2.6; energy: 2.4; }
  cell (HA)   { area: 4.3; delay: 3.0; energy: 5.5; }
  cell (FA)   { area: 5.5; delay: 4.0; energy: 6.7; }
  cell (DFF)  { area: 6.6; delay: 0.0; energy: 7.7; }
  cell (SRAM) { area: 2.2; delay: 0.0; energy: 0.0; }
}
"""


class DoubleBufferedIntTemplate(IntMacroTemplate):
    """Integer macro with a ping-pong input buffer pair."""

    name = "int-mul-double-buffered"

    def generate(self, design: DesignPoint) -> RtlBundle:
        bundle = super().generate(design)
        shadow = generate_input_buffer(design.h, design.precision.bits, design.k)
        shadow.name = shadow.name + "_shadow"
        modules = dict(bundle.modules)
        modules[shadow.name] = shadow.render()
        return RtlBundle(design=bundle.design, top=bundle.top, modules=modules)


def main() -> None:
    library = load_library(LOW_POWER_LIB)
    print(f"Loaded custom cell library {library.name!r} "
          f"(FA energy {library.full_adder.energy} vs 8.4 stock)")

    compiler = SegaDcim(
        library=library,
        config=NSGA2Config(population_size=32, generations=20, seed=1),
    )
    spec = DcimSpec(wstore=8 * 1024, precision="INT8")
    result = compiler.compile(spec, exhaustive=True, generate=False, layout=False)
    stock = SegaDcim().compile(spec, exhaustive=True, generate=False, layout=False)
    print(f"knee with low-power lib : {result.metrics.tops_per_watt:.1f} TOPS/W")
    print(f"knee with stock Table III: {stock.metrics.tops_per_watt:.1f} TOPS/W")

    register_template(DoubleBufferedIntTemplate())
    print(f"\nRegistered templates: {available_templates()}")
    template = DoubleBufferedIntTemplate()
    bundle = template.generate(result.selected)
    shadow = [n for n in bundle.module_names() if n.endswith("_shadow")]
    print(f"Double-buffered bundle adds: {shadow[0]}")
    print(f"Total modules: {len(bundle.modules)} (stock template emits 8)")


if __name__ == "__main__":
    main()
