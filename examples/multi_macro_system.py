"""System-level study: how many macros, and how to schedule them.

Takes the Transformer-block workload, compiles a macro for it, then
sweeps the number of macro instances under both schedules (sequential
data-parallel vs layer-pipelined) — the system-sizing question that
follows once the paper's compiler has produced a macro.

Usage::

    python examples/multi_macro_system.py
"""

from repro import SegaDcim
from repro.reporting import ascii_table
from repro.workloads import (
    macros_for_residency,
    map_system,
    recommend_spec,
    transformer_block,
)


def main() -> None:
    layers = transformer_block(d_model=256, seq_len=128)
    compiler = SegaDcim()
    spec = recommend_spec(layers, "INT8")
    result = compiler.compile(spec, exhaustive=True, generate=False, layout=False)
    design = result.selected
    print(f"Macro: {design.describe()}")
    print(f"Tiles for full residency: {macros_for_residency(layers, design)} macros\n")

    rows = []
    for n_macros in (1, 2, 4, 8):
        for schedule in ("sequential", "pipelined"):
            sm = map_system(layers, design, compiler.tech, n_macros, schedule)
            rows.append(
                (
                    n_macros,
                    schedule,
                    f"{sm.latency_us:.1f}",
                    f"{sm.throughput_inferences_s:.0f}",
                    f"{sm.energy_uj:.1f}",
                    f"{sm.area_mm2:.2f}",
                )
            )
    print(
        ascii_table(
            ["macros", "schedule", "latency_us", "inferences/s",
             "energy_uJ/inf", "area_mm2"],
            rows,
        )
    )
    print(
        "\nSequential scheduling cuts latency until per-layer passes run\n"
        "out; pipelining trades single-inference latency for steady-state\n"
        "throughput at the same energy per inference."
    )


if __name__ == "__main__":
    main()
