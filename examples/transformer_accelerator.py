"""Size a DCIM macro for a Transformer encoder block (Fig. 1 scenario).

Derives the specification from the workload, explores both an INT8 and
a BF16 macro for it, maps every layer, and compares the two precisions
on latency, energy and achieved throughput — the kind of application
trade-off the paper's design space explorer is built to answer.

Usage::

    python examples/transformer_accelerator.py
"""

from repro import DcimSpec, SegaDcim
from repro.reporting import ascii_table, format_si
from repro.workloads import map_network, recommend_spec, transformer_block


def main() -> None:
    layers = transformer_block(d_model=256, seq_len=128)
    compiler = SegaDcim()

    print("Transformer block workload:")
    rows = [
        (l.name, l.rows, l.cols, l.vectors, format_si(l.weight_count))
        for l in layers
    ]
    print(ascii_table(["layer", "rows", "cols", "vectors", "weights"], rows))

    comparison = []
    for precision in ("INT8", "BF16"):
        spec = recommend_spec(layers, precision)
        print(f"\n=== {precision}: exploring Wstore={format_si(spec.wstore)} ===")
        result = compiler.compile(spec, exhaustive=True, generate=False, layout=False)
        design = result.selected
        mapping = map_network(layers, design, compiler.tech)
        print(f"selected: {design.describe()}")
        per_layer = [
            (
                m.layer.name,
                f"{m.row_tiles}x{m.col_tiles}",
                m.passes,
                f"{m.latency_us:.1f}",
                f"{m.energy_uj:.2f}",
                f"{m.utilization:.2f}",
            )
            for m in mapping.layers
        ]
        print(
            ascii_table(
                ["layer", "tiles", "passes", "latency_us", "energy_uJ", "util"],
                per_layer,
            )
        )
        comparison.append(
            (
                precision,
                f"{result.metrics.layout_area_mm2:.3f}",
                f"{mapping.latency_us:.1f}",
                f"{mapping.energy_uj:.1f}",
                f"{mapping.tops_effective:.2f}",
                f"{result.metrics.tops_per_watt:.1f}",
            )
        )

    print("\n=== Precision comparison (one encoder block inference) ===")
    print(
        ascii_table(
            ["precision", "area_mm2", "latency_us", "energy_uJ",
             "effective_TOPS", "peak_TOPS/W"],
            comparison,
        )
    )
    print(
        "\nThe BF16 macro tracks the INT8 macro closely on area and energy\n"
        "(the pre-aligned architecture's headline property) while keeping\n"
        "floating-point range for attention scores."
    )


if __name__ == "__main__":
    main()
