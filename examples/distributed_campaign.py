"""Distributed execution: one coordinator, two worker processes.

Spawns ``repro serve --workers-remote`` (the coordinator: it shards
each submitted campaign into per-spec work units and leases them out)
plus two ``repro worker`` processes that drain the units, then submits
a two-spec campaign over HTTP and checks the merged front is
bit-identical to running the same request in-process.  Both workers
share the coordinator's evaluation cache through the ``remote`` cache
backend, so a genome either of them evaluates is a cache hit for the
other — the second (otherwise identical) campaign at the end is served
entirely from that shared cache.

The same topology from the command line::

    repro serve --port 8000 --workers-remote --lease-ttl 30
    repro worker --url http://127.0.0.1:8000   # on each worker machine
    repro submit --url http://127.0.0.1:8000 --spec 4096:INT4 --watch

Usage::

    python examples/distributed_campaign.py
"""

import subprocess
import sys
import time

from repro.service import (
    CampaignClient,
    CampaignRequest,
    EvaluationCache,
    SpecRequest,
    execute_request,
)


def spawn(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def run(client: CampaignClient, request: CampaignRequest):
    job_id = client.submit(request)
    for event in client.watch(job_id):
        print(f"  event: {event.kind.value}")
    return client.result(job_id)


def main() -> None:
    coordinator = spawn(
        "serve", "--port", "0", "--workers-remote", "--lease-ttl", "10"
    )
    workers: list[subprocess.Popen] = []
    try:
        line = coordinator.stdout.readline()
        url = line.split()[3]
        print(f"coordinator up at {url}")
        client = CampaignClient(url, retries=4)
        while not client.healthy():
            time.sleep(0.1)

        for _ in range(2):
            workers.append(
                spawn("worker", "--url", url, "--poll", "0.1",
                      "--exit-idle", "30")
            )

        request = CampaignRequest(
            specs=(SpecRequest(4096, "INT4"), SpecRequest(8192, "INT8")),
            population_size=24,
            generations=8,
            seed=7,
            exhaustive_threshold=0,
        )
        print("submitting campaign to the worker pool...")
        response = run(client, request)
        print(f"distributed: {len(response.frontier)} frontier points, "
              f"{response.evaluations} evaluations "
              f"({response.fresh_evaluations} fresh)")

        for row in client.workers():
            print(f"  worker {row['worker_id']}: {row['units_done']} "
                  f"unit(s) done, state {row['state']}")

        reference = execute_request(request, cache=EvaluationCache())
        matches = [p.to_dict() for p in response.frontier] == [
            p.to_dict() for p in reference.frontier
        ]
        print(f"bit-identical to the in-process run: {matches}")

        # The workers filled the coordinator's shared cache — an
        # equivalent campaign (new fingerprint, same design space)
        # needs no fresh evaluations at all.
        warm = run(client, CampaignRequest(
            specs=request.specs,
            population_size=24,
            generations=8,
            seed=7,
            workers=3,
            exhaustive_threshold=0,
        ))
        print(f"warm re-run: {warm.evaluations} evaluations, "
              f"{warm.fresh_evaluations} fresh "
              f"(cache hit rate {warm.cache_stats['hit_rate']:.0%})")
    finally:
        for proc in workers:
            proc.terminate()
        coordinator.terminate()
        for proc in [*workers, coordinator]:
            proc.wait(timeout=30)


if __name__ == "__main__":
    main()
