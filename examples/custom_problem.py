"""Register a user-defined optimisation problem and serve it.

The campaign stack is problem-agnostic: anything registered with
:func:`repro.problems.register_problem` is reachable from
``run_campaign``, the v2 ``CampaignRequest`` wire format, the job
queue, the HTTP server (including ``GET /api/problems`` discovery) and
the run registry — without touching any of them.

This example registers a toy *accumulator buffer* sizing problem: pick
the bank count, words per bank and word width of an on-chip buffer,
trading total bit capacity against an analytic area/energy/latency
model.  It is deliberately tiny (no repo models involved) so the
registry contract itself is the whole story:

1. a frozen dataclass describes the JSON-able spec,
2. a problem object implements the NSGA-II protocol
   (``sample``/``repair``/``evaluate``/``mutation_steps``/``decode``),
3. a :class:`~repro.problems.ProblemDefinition` subclass binds the two
   plus objective metadata, and registers itself.

Run with: ``PYTHONPATH=src python examples/custom_problem.py``
"""

import random
from dataclasses import dataclass

from repro.dse.nsga2 import NSGA2Config
from repro.problems import (
    GASizing,
    ProblemDefinition,
    SpecValidationError,
    problem_names,
    register_problem,
)
from repro.service import CampaignConfig, CampaignRequest, JobQueue, run_campaign

# 1. The JSON-able specification -----------------------------------------


@dataclass(frozen=True)
class BufferSpec:
    """What the user asks of the buffer: capacity and a width ceiling."""

    min_kibit: int = 64
    max_width: int = 64

    def __post_init__(self) -> None:
        if self.min_kibit < 1:
            raise ValueError(f"min_kibit must be >= 1, got {self.min_kibit}")
        if self.max_width < 8:
            raise ValueError(f"max_width must be >= 8, got {self.max_width}")


# 2. The GA-facing problem object ----------------------------------------


class BufferProblem:
    """Genome ``(banks_exp, words_exp, width_exp)``; all powers of two."""

    def __init__(self, spec: BufferSpec) -> None:
        self.spec = spec
        # 1..32 banks, 16..4096 words, 8..max_width bits: the width
        # ceiling lives in the genome bounds, so every genome decodes
        # to exactly the design that was scored.
        max_width_exp = max(spec.max_width.bit_length() - 1, 3)
        self.BOUNDS = ((0, 5), (4, 12), (3, max_width_exp))

    def sample(self, rng: random.Random):
        return tuple(rng.randint(lo, hi) for lo, hi in self.BOUNDS)

    def repair(self, genome, rng: random.Random):
        return tuple(
            min(max(g, lo), hi) for g, (lo, hi) in zip(genome, self.BOUNDS)
        )

    def mutation_steps(self):
        return (1, 2, 1)

    def decode(self, genome):
        banks, words, width = (1 << g for g in genome)
        return {"banks": banks, "words": words, "width": width}

    def evaluate(self, genome):
        banks, words, width = (1 << g for g in genome)
        kibit = banks * words * width / 1024
        # Toy analytics: area grows with bits plus per-bank overhead,
        # energy with word width, latency shrinks with banking.
        area = kibit * (1.0 + 0.05 * banks)
        energy = width * (1.0 + words / 4096)
        latency = words / banks
        shortfall = max(0.0, self.spec.min_kibit - kibit)
        penalty = 1e3 * shortfall  # soft capacity constraint
        return (area + penalty, energy + penalty, latency + penalty)

    def evaluate_batch(self, genomes):
        return [self.evaluate(g) for g in genomes]


# 3. The registry entry ---------------------------------------------------


class BufferDefinition(ProblemDefinition):
    name = "buffer"
    title = "Accumulator buffer sizing (example)"
    description = "Toy banks x words x width sizing with analytic costs."
    objectives = ("area", "energy", "latency")
    spec_type = BufferSpec
    sizing = GASizing(population_size=16, generations=10)

    def to_spec(self, spec_request):
        return spec_request  # the wire form is already concrete

    def spec_label(self, spec):
        return f"buffer:{spec.min_kibit}Kib"

    def parse_cli_spec(self, text):
        try:
            return BufferSpec(min_kibit=int(text))
        except ValueError as exc:
            raise SpecValidationError(self.name, str(exc)) from None

    def make_problem(self, spec, library=None, engine="auto"):
        return BufferProblem(spec)


def main() -> None:
    register_problem(BufferDefinition())
    print(f"registered problems: {', '.join(problem_names())}\n")

    # Programmatic campaign through the generic runner.
    result = run_campaign(
        [BufferSpec(min_kibit=64)],
        CampaignConfig(
            nsga2=NSGA2Config(population_size=16, generations=10),
            problem="buffer",
        ),
    )
    print(f"front of {len(result.merged_points)} buffer designs "
          f"({result.evaluations} evaluations):")
    for point, objectives in zip(
        result.merged_points[:5], result.merged_objectives[:5]
    ):
        area, energy, latency = objectives
        print(f"  {point['banks']:>2} banks x {point['words']:>4} words "
              f"x {point['width']:>3}b -> area {area:7.1f}  "
              f"energy {energy:6.1f}  latency {latency:6.1f}")

    # The same problem through the wire format and the job queue — this
    # is exactly what the HTTP server would execute for a POSTed v2
    # payload {"schema_version": 2, "problem": "buffer", ...}.
    request = CampaignRequest(
        problem="buffer",
        specs=({"min_kibit": 128},),
        population_size=16,
        generations=8,
    )
    queue = JobQueue()
    job_id = queue.submit(request)
    queue.run_all()
    response = queue.result(job_id)
    print(f"\nvia the job queue: {len(response.frontier)} frontier points "
          f"for problem {response.problem!r} "
          f"(fingerprint {request.fingerprint()[:12]}...)")


if __name__ == "__main__":
    main()
