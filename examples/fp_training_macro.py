"""Floating-point macro for on-device training + accuracy analysis.

High-precision tasks such as model training motivate the paper's FP
support.  This example explores FP16/FP32/BF16 macros at 16K weights,
then quantifies the accuracy cost of the pre-aligned datapath (the
truncating mantissa alignment) against exact floating-point dot
products over random activations — the kind of evidence a user needs
before committing to the architecture.

Usage::

    python examples/fp_training_macro.py
"""

import numpy as np

from repro import DcimSpec, SegaDcim
from repro.func import FloatFormat, alignment_error
from repro.reporting import ascii_table


def accuracy_sweep(fmt: FloatFormat, h: int = 128, trials: int = 200) -> dict:
    """Median/max relative alignment error over random dot products."""
    rng = np.random.default_rng(42)
    rel_errors = []
    for _ in range(trials):
        x = rng.normal(scale=rng.uniform(0.1, 10.0), size=h)
        w = rng.normal(size=h)
        err = alignment_error(x, w, fmt)
        scale = float(np.abs(x) @ np.abs(w))
        rel_errors.append(err["abs_error"] / scale if scale else 0.0)
    rel = np.array(rel_errors)
    return {"median": float(np.median(rel)), "p99": float(np.quantile(rel, 0.99))}


def main() -> None:
    compiler = SegaDcim()
    rows = []
    for precision in ("FP16", "BF16", "FP32"):
        spec = DcimSpec(wstore=16 * 1024, precision=precision)
        result = compiler.compile(
            spec, exhaustive=True, generate=False, layout=False
        )
        m = result.metrics
        acc = accuracy_sweep(FloatFormat.from_precision(precision))
        rows.append(
            (
                precision,
                result.selected.describe().split(" ", 2)[2],
                f"{m.layout_area_mm2:.3f}",
                f"{m.tops:.2f}",
                f"{m.tops_per_watt:.1f}",
                f"{acc['median']:.2e}",
                f"{acc['p99']:.2e}",
            )
        )
    print("FP training macros at Wstore=16K (knee designs):")
    print(
        ascii_table(
            ["precision", "parameters", "area_mm2", "peak_TOPS", "TOPS/W",
             "median_rel_err", "p99_rel_err"],
            rows,
        )
    )
    print(
        "\nThe alignment truncation error sits near the format's intrinsic\n"
        "rounding error, so the pre-aligned integer array costs almost no\n"
        "extra accuracy — while area/energy stay close to the integer macro."
    )


if __name__ == "__main__":
    main()
