"""Evaluation service: run a cached, parallel multi-spec DSE campaign.

Explores two architectures (an INT8 and a BF16 candidate for the same
application) as one campaign: both NSGA-II runs share a persistent
evaluation cache and a batch executor, and their fronts are merged into
one cross-architecture frontier.  Running the campaign a second time
demonstrates the warm-cache path — every objective evaluation is served
from disk, so the run costs no model evaluations at all.

The same campaign can be driven from the command line::

    repro campaign --spec 8192:INT8 --spec 8192:BF16 \
        --cache build/evals.jsonl --backend thread --workers 2

For the progress-aware serving layer on top of this queue — streaming
generation-by-generation events and cancelling campaigns mid-flight,
in-process or over HTTP — see ``examples/async_service.py`` and the
``repro serve`` / ``repro submit`` / ``repro watch`` subcommands.

Usage::

    python examples/campaign_service.py [cache_path]
"""

import sys

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.service import (
    CampaignConfig,
    CampaignRequest,
    EvaluationCache,
    JobQueue,
    SpecRequest,
    run_campaign,
)


def main(cache_path: str = "build/campaign_evals.jsonl") -> None:
    specs = [
        DcimSpec(wstore=8 * 1024, precision="INT8"),
        DcimSpec(wstore=8 * 1024, precision="BF16"),
    ]
    config = CampaignConfig(
        nsga2=NSGA2Config(population_size=32, generations=20),
        seed=0,
        workers=2,
        backend="thread",
    )

    for label in ("cold", "warm"):
        with EvaluationCache(cache_path) as cache:
            result = run_campaign(specs, config, cache=cache)
        stats = result.cache_stats
        print(
            f"{label} run: {len(result.merged_points)} frontier designs, "
            f"{result.evaluations} unique genomes, "
            f"hit rate {stats.hit_rate:.1%}, "
            f"wall time {result.wall_time_s * 1e3:.0f} ms"
        )

    print("\nMerged cross-architecture frontier (first 5 by area):")
    for point in result.merged_points[:5]:
        print(f"  {point.describe()}")

    # The same campaign through the job queue: identical requests are
    # deduplicated onto one job before any work happens.
    request = CampaignRequest(
        specs=tuple(SpecRequest.from_spec(s) for s in specs),
        population_size=32,
        generations=20,
        seed=0,
    )
    with EvaluationCache(cache_path) as cache:
        queue = JobQueue(cache=cache)
        first = queue.submit(request)
        second = queue.submit(request)
        queue.run_all()
        response = queue.result(first)
    print(
        f"\njob queue: {first} == {second} (deduplicated), "
        f"{len(response.frontier)} designs, "
        f"JSON payload {len(response.to_json())} bytes"
    )


if __name__ == "__main__":
    main(*sys.argv[1:])
