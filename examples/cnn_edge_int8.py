"""Edge CNN accelerator under a hard area budget.

Explores INT8 macros for a small CNN, distills the frontier with an
edge-class area budget (0.8 mm^2) and contrasts the distilled pick with
the unconstrained knee — demonstrating the "user distillation" stage of
the SEGA-DCIM flow (Fig. 4).

Usage::

    python examples/cnn_edge_int8.py
"""

from repro import DcimSpec, Requirements, SegaDcim
from repro.reporting import ascii_table
from repro.workloads import map_network, recommend_spec, tiny_cnn


def main() -> None:
    layers = tiny_cnn()
    compiler = SegaDcim()
    spec = recommend_spec(layers, "INT8")
    print(f"Workload: tiny CNN, largest layer -> Wstore={spec.wstore}")

    budget = Requirements(max_area_mm2=0.8)
    constrained = compiler.compile(
        spec, requirements=budget, strategy="max_tops",
        exhaustive=True, generate=False, layout=False,
    )
    unconstrained = compiler.compile(
        spec, strategy="knee", exhaustive=True, generate=False, layout=False,
    )

    rows = []
    for label, result in (("edge (<=0.8mm2)", constrained), ("knee", unconstrained)):
        mapping = map_network(layers, result.selected, compiler.tech)
        m = result.metrics
        rows.append(
            (
                label,
                result.selected.describe(),
                f"{m.layout_area_mm2:.3f}",
                f"{m.tops:.2f}",
                f"{m.tops_per_watt:.1f}",
                f"{mapping.latency_us:.0f}",
                f"{mapping.energy_uj:.1f}",
            )
        )
    print(
        ascii_table(
            ["pick", "design", "area_mm2", "peak_TOPS", "TOPS/W",
             "cnn_latency_us", "cnn_energy_uJ"],
            rows,
        )
    )
    print(
        f"\nFrontier had {len(unconstrained.exploration.points)} designs; "
        f"{len(constrained.distilled)} satisfied the edge budget."
    )


if __name__ == "__main__":
    main()
