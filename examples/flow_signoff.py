"""Full signoff flow: compile, then verify every artifact like a tapeout.

Runs the complete SEGA-DCIM pipeline for a BF16 macro and then the
signoff battery this reproduction provides:

1. Verilog lint (elaboration substitute) of the generated bundle,
2. DRC + LVS on the mock-P&R layout,
3. gate-level equivalence of the datapath vs the golden model,
4. static timing analysis of the gate-level adder tree vs the
   estimation model's array-stage delay,
5. toggle-measured switching power at the paper's sparsity,
6. Monte-Carlo parametric yield, and
7. artifact workspace with manifest.

Usage::

    python examples/flow_signoff.py [output_dir]
"""

import sys
from pathlib import Path

from repro import DcimSpec, SegaDcim
from repro.core.manifest import write_artifacts
from repro.layout.checks import run_drc, run_lvs
from repro.model.variation import monte_carlo
from repro.netlist import analyze_timing, build_adder_tree
from repro.netlist.power import measure_power
from repro.reporting import ascii_table
from repro.rtl.lint import lint_bundle


def main(out_dir: str = "build/signoff") -> None:
    compiler = SegaDcim()
    spec = DcimSpec(wstore=8 * 1024, precision="BF16")
    print(f"Compiling {spec.precision.name} Wstore={spec.wstore} ...")
    result = compiler.compile(spec, exhaustive=True, verify=True)
    design = result.selected
    print(result.summary())

    rows = []
    lint = lint_bundle(result.rtl)
    rows.append(("RTL lint", "CLEAN" if lint.passed else "FAIL",
                 f"{len(lint.modules)} modules"))
    drc = run_drc(result.layout)
    rows.append(("DRC", "CLEAN" if drc.passed else "FAIL",
                 f"{len(result.layout.floorplan.placements)} blocks"))
    lvs = run_lvs(result.layout)
    rows.append(("LVS", "CLEAN" if lvs.passed else "FAIL", "3 part groups"))
    rows.append((
        "gate-level equivalence",
        "PASS" if result.verification.passed else "FAIL",
        f"{result.verification.trials} trials",
    ))

    # STA on a representative column tree vs the model's array stage.
    tree = build_adder_tree(min(design.h, 64), design.k)
    sta = analyze_timing(tree)
    model_delay = design.macro_cost().stage_delays["array"]
    rows.append((
        "STA (tree h<=64)",
        f"{compiler.tech.delay_ns(sta.critical_delay):.2f} ns",
        f"model bound {compiler.tech.delay_ns(model_delay):.2f} ns",
    ))

    power = measure_power(tree, vectors=100, density=0.1)
    rows.append((
        "toggle power @10% density",
        f"{compiler.tech.energy_fj(power.energy_per_vector, activity=1.0):.0f} fJ/vec",
        f"activity {power.activity:.2f}",
    ))

    mc = monte_carlo(design, compiler.tech, samples=500)
    nominal = result.metrics.delay_ns
    rows.append((
        "MC yield @ +10% period",
        f"{mc.yield_at(nominal * 1.1):.1%}",
        f"{mc.samples} dies",
    ))

    print("\nSignoff summary:")
    print(ascii_table(["check", "result", "detail"], rows))

    manifest = write_artifacts(result, Path(out_dir), compiler.tech)
    print(f"\nartifacts: {manifest.parent}")
    assert lint.passed and drc.passed and lvs.passed
    assert result.verification.passed


if __name__ == "__main__":
    main(*sys.argv[1:2])
