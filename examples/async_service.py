"""Async serving: stream a campaign's progress and cancel another.

Demonstrates the progress-aware serving core on top of the evaluation
service: an :class:`~repro.service.server.AsyncCampaignService` backed
by background workers runs two campaigns —

1. a short INT8/BF16 campaign whose per-generation events are streamed
   with ``async for`` while it runs, and
2. a deliberately long campaign that is cancelled cooperatively after
   its first few generation events, showing it stops well before its
   configured generation budget.

Both share one in-memory :class:`~repro.service.cache.EvaluationCache`,
so the second campaign's overlapping genomes are served from the first
run's evaluations.  The same interactions work over a socket::

    python -m repro serve --port 8000 --workers 2 &
    python -m repro submit --url http://127.0.0.1:8000 --spec 8192:INT8 --watch

Usage::

    python examples/async_service.py
"""

import asyncio

from repro.service import (
    AsyncCampaignService,
    CampaignRequest,
    EvaluationCache,
    EventKind,
    SpecRequest,
)

SHORT = CampaignRequest(
    specs=(SpecRequest(8192, "INT8"), SpecRequest(8192, "BF16")),
    population_size=32,
    generations=12,
    seed=0,
)
LONG = CampaignRequest(
    specs=(SpecRequest(8192, "INT8"),),
    population_size=32,
    generations=500,  # far more than we intend to wait for
    seed=1,
    # Small dcim spaces default to instant exhaustive enumeration,
    # which would leave nothing to cancel — force the GA for the demo.
    exhaustive_threshold=0,
)


async def stream_short(service: AsyncCampaignService) -> None:
    job_id = await service.submit(SHORT)
    print(f"streaming {job_id}:")
    async for event in service.events(job_id):
        print(f"  {event.describe()}")
    response = await service.result(job_id)
    print(
        f"{job_id}: {len(response.frontier)} frontier designs, "
        f"{response.fresh_evaluations}/{response.evaluations} computed fresh\n"
    )


async def cancel_long(service: AsyncCampaignService) -> None:
    job_id = await service.submit(LONG)
    print(f"cancelling {job_id} after three generations:")
    generations = 0
    async for event in service.events(job_id):
        if event.kind is EventKind.GENERATION_DONE:
            generations += 1
            if generations == 3:
                await service.cancel(job_id)
        if event.terminal:
            print(f"  {event.describe()}")
    status = await service.status(job_id)
    print(
        f"{job_id}: status {status.value} after {generations} of "
        f"{LONG.generations} configured generations"
    )


def print_live_metrics() -> None:
    """Everything above also fed the process-global metrics registry.

    This is the same sample ``GET /metrics`` (Prometheus text) and
    ``GET /api/metrics`` (JSON) serve over HTTP, and the rows
    ``repro serve --snapshot-every`` records for ``repro dashboard``.
    """
    from repro.obs import get_registry

    sample = get_registry().sample_values()
    interesting = (
        "repro_evaluations_total",
        "repro_jobs_submitted_total",
        "repro_jobs_total",
        "repro_campaign_generations_total",
        "repro_cache_hits_total",
        "repro_job_run_seconds_p95",
    )
    print("\nlive metrics (subset of the /metrics sample):")
    for key in sorted(sample):
        if key.startswith(interesting):
            print(f"  {key} = {sample[key]:g}")


def print_trace_tree(tracer) -> None:
    """Show where the newest campaign's time went, span by span.

    Every campaign above also produced an end-to-end trace (queue wait
    -> run -> campaign -> specs -> generations -> executor chunks).
    This renders the newest campaign trace the way
    ``repro trace show <id>`` would.
    """
    from repro.obs.trace import trace_tree

    records = [r for r in tracer.finished() if r.name != "null"]
    if not records:
        print("\nno finished traces (unexpected)")
        return
    print("\ntrace of the most recent campaign:")
    print(trace_tree(records[0].spans))


async def main() -> None:
    # Install a fully-sampling tracer so the demo always keeps its
    # traces; `repro serve --trace-sample` does the same over HTTP.
    from repro.obs.trace import Tracer, set_tracer

    tracer = Tracer(sample_ratio=1.0)
    set_tracer(tracer)

    cache = EvaluationCache()
    async with AsyncCampaignService(workers=2, cache=cache) as service:
        await stream_short(service)
        await cancel_long(service)
    print(f"\nshared cache: {cache.stats.hits} hits / {cache.stats.misses} misses")
    print_live_metrics()
    print_trace_tree(tracer)


if __name__ == "__main__":
    asyncio.run(main())
