"""Quickstart: compile one INT8 DCIM macro end to end.

Runs the full SEGA-DCIM pipeline for an 8K-weight INT8 specification
(the Fig. 6(a) scenario): explore the design space, distill the Pareto
frontier, pick the knee design, generate its Verilog, place-and-route
it, and verify a scaled gate-level twin against the golden model.

Usage::

    python examples/quickstart.py [output_dir]
"""

import sys
from pathlib import Path

from repro import DcimSpec, SegaDcim
from repro.rtl import write_bundle


def main(out_dir: str = "build/quickstart") -> None:
    compiler = SegaDcim()
    spec = DcimSpec(wstore=8 * 1024, precision="INT8")

    print(f"Compiling a {spec.precision.name} macro with Wstore={spec.wstore} ...")
    result = compiler.compile(spec, exhaustive=True, verify=True)

    print()
    print(result.summary())
    print()
    print(f"Pareto frontier: {len(result.exploration.points)} designs, e.g.")
    for point in result.exploration.points[:3]:
        print(f"  {point.describe()}")
    print(f"Selected: {result.selected.describe()}")
    print(f"Gate-level verification: {result.verification}")

    out = Path(out_dir)
    paths = write_bundle(result.rtl, out / "rtl")
    (out / "layout.def").parent.mkdir(parents=True, exist_ok=True)
    (out / "layout.def").write_text(result.layout.def_text)
    print(f"\nWrote {len(paths)} RTL files to {out / 'rtl'}")
    print(f"Wrote layout to {out / 'layout.def'}")
    print(
        f"Die: {result.layout.width_um:.0f} x {result.layout.height_um:.0f} um "
        f"({result.layout.area_mm2:.4f} mm2)"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
