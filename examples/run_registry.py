"""Run registry walkthrough: record, compare, and gate campaigns.

Runs two small campaigns through the evaluation service with a
persistent :class:`~repro.store.runstore.RunStore` attached, pins the
first as the ``main`` baseline, compares the two fronts (hypervolume,
epsilon-indicator, coverage, diff, knee drift), and finally shows the
regression gate failing on an artificially degraded front.

Run with: ``PYTHONPATH=src python examples/run_registry.py``
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.reporting import comparison_markdown, run_report_markdown
from repro.service import CampaignConfig, EvaluationCache, run_campaign
from repro.service.api import CampaignResponse, FrontierPoint
from repro.store import RunStore, check_regression, compare_runs


def main() -> None:
    with TemporaryDirectory() as tmp:
        store = RunStore(Path(tmp) / "runs.sqlite")
        cache = EvaluationCache(Path(tmp) / "evals.sqlite")
        specs = [DcimSpec(wstore=4096, precision=p) for p in ("INT4", "INT8")]
        config = CampaignConfig(nsga2=NSGA2Config(population_size=16,
                                                  generations=6))

        # 1. Record two campaigns (the second is served from the cache).
        first = run_campaign(specs, config, cache=cache,
                             store=store, run_name="nightly-1")
        second = run_campaign(specs, config, cache=cache,
                              store=store, run_name="nightly-2")
        store.set_baseline("main", first.run_id)
        print(f"recorded {first.run_id} (baseline 'main') and "
              f"{second.run_id}; registry holds {len(store)} runs\n")

        # 2. Cross-run comparison: identical seeds => identical fronts.
        comparison = compare_runs(store, "main", second.run_id)
        print(comparison.describe(), "\n")

        # 3. The regression gate passes for the twin run ...
        report = check_regression(store, second.run_id, "main")
        print(f"gate on twin run: "
              f"{'PASS' if report.passed else 'FAIL'}\n")

        # 4. ... and fails on an artificially degraded front (every
        # objective 20% worse, half the points dropped).
        good_front = store.front(first.run_id)
        degraded = [
            FrontierPoint(
                precision=p.precision, n=p.n, h=p.h, l=p.l, k=p.k,
                objectives=tuple(o + abs(o) * 0.2 for o in p.objectives),
            )
            for p in good_front[::2]
        ]
        bad = store.record_response(
            CampaignResponse(frontier=tuple(degraded)),
            specs=["degraded"], name="degraded",
        )
        report = check_regression(store, bad.run_id, "main")
        print(report.describe())
        assert not report.passed

        # 5. Markdown artifacts for sharing.
        print("\n--- run report (markdown, truncated) ---")
        markdown = run_report_markdown(store.get_run(first.run_id), good_front)
        print("\n".join(markdown.splitlines()[:12]))
        print("\n--- comparison report (markdown) ---")
        print(comparison_markdown(comparison))

        store.close()
        cache.close()


if __name__ == "__main__":
    main()
