#!/usr/bin/env bash
# Smoke test: tier-1 suite plus a tiny end-to-end campaign through the
# evaluation service (cold run populates the cache, warm run must be
# served from it). Run from anywhere; exercises the hot path every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (critical rules) =="
    ruff check src tests examples benchmarks
else
    echo "== ruff not installed; skipping lint (CI runs it) =="
fi

python -m pytest -x -q

echo "== batch/scalar parity =="
python - <<'PY'
from repro.core.spec import DcimSpec
from repro.dse.problem import DcimProblem, objectives_of
from repro.model.engine import HAS_NUMPY

backends = ["python"] + (["numpy"] if HAS_NUMPY else [])
for precision in ("INT8", "BF16"):
    spec = DcimSpec(wstore=4096, precision=precision)
    for backend in backends:
        problem = DcimProblem(spec, engine_backend=backend)
        genomes = problem.codec.enumerate()
        scalar = [
            objectives_of(problem.codec.decode(g).macro_cost(problem.library))
            for g in genomes
        ]
        assert problem.evaluate_batch(genomes) == scalar, (precision, backend)
        print(f"parity OK: {precision} x {backend} ({len(genomes)} genomes)")
PY

echo "== DSE runtime bench (records benchmarks/results/dse_runtime.txt) =="
python -m pytest benchmarks/test_dse_runtime.py -q

echo "== GA kernel bench (>=3x gate, appends to dse_runtime.txt) =="
python -m pytest benchmarks/test_ga_kernels.py -q

echo "== cache pipeline bench (>=5x gate, records cache_pipeline.txt) =="
python -m pytest benchmarks/test_cache_pipeline.py -q

workdir="$(mktemp -d)"
server_pid=""
worker_pids=()
cleanup() {
    [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
    for pid in "${worker_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

# Block until a serving coordinator answers GET /api/healthz — the same
# readiness handshake 'repro worker' runs before registering.
wait_healthy() {
    python - "$1" <<'PY'
import sys
import time

from repro.service import CampaignClient

client = CampaignClient(sys.argv[1], retries=4)
deadline = time.time() + 15
while time.time() < deadline:
    try:
        payload = client.health()
    except RuntimeError:
        payload = {}
    if payload.get("status") == "ok":
        print(f"healthz: version {payload['version']}, "
              f"queue depth {payload['queue_depth']}")
        sys.exit(0)
    time.sleep(0.2)
sys.exit("server never became healthy on /api/healthz")
PY
}
cache="$workdir/evals.jsonl"

run_campaign() {
    python -m repro campaign \
        --spec 4096:INT4 --spec 4096:INT8 \
        --population 16 --generations 6 \
        --engine auto --chunk-size 64 \
        --cache "$cache" --cache-flush-every 128 --limit 5
}

echo "== cache key parity: pre-PR cache file resolves hit-for-hit =="
# The writer is pinned to the *pre-PR* key formula and on-disk layout —
# plain file writes, no cache classes — so any drift in GenomeKeyer or
# the JSONL tier shows up as a miss here.
legacy_cache="$workdir/legacy_evals.jsonl"
python - "$legacy_cache" <<'PY'
import dataclasses
import hashlib
import json
import sys

from repro.core.spec import DcimSpec
from repro.dse.problem import DcimProblem
from repro.tech.cells import CellLibrary


def sha(payload):  # the pre-PR stable_hash, frozen
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


spec = DcimSpec(wstore=4096, precision="INT8")
library = CellLibrary.default()
cells = {name: (c.area, c.delay, c.energy) for name, c in library.cells.items()}
context = sha({
    "spec": dataclasses.asdict(spec),
    "library": {"name": library.name, "cells": cells},
})
genomes = DcimProblem(spec, library).codec.enumerate()
with open(sys.argv[1], "w", encoding="utf-8") as out:
    for i, genome in enumerate(genomes):
        key = sha({"genome": list(genome), "context": context})
        out.write(json.dumps({"key": key, "objectives": [float(i), -1.0]}) + "\n")
print(f"pinned writer: {len(genomes)} pre-PR entries")
PY
python - "$legacy_cache" <<'PY'
import sys

from repro.core.spec import DcimSpec
from repro.dse.problem import DcimProblem
from repro.service.cache import EvaluationCache, GenomeKeyer
from repro.tech.cells import CellLibrary

spec = DcimSpec(wstore=4096, precision="INT8")
library = CellLibrary.default()
genomes = DcimProblem(spec, library).codec.enumerate()
keyer = GenomeKeyer.for_problem(spec, library)
with EvaluationCache(sys.argv[1]) as cache:
    results = cache.get_many([keyer(g) for g in genomes])
    assert all(r is not None for r in results), "pre-PR keys stopped resolving"
    assert cache.stats.hit_rate == 1.0
    assert [r[0] for r in results] == [float(i) for i in range(len(genomes))]
print(f"key parity: {len(genomes)}/{len(genomes)} pre-PR entries hit")
PY

echo "== cache CLI: stats + migrate jsonl -> sqlite =="
python -m repro cache stats "$legacy_cache"
python -m repro cache migrate "$legacy_cache" "$workdir/legacy_evals.sqlite"
python -m repro cache stats "$workdir/legacy_evals.sqlite" --json
python - "$legacy_cache" "$workdir/legacy_evals.sqlite" <<'PY'
import sys

from repro.service.cache import EvaluationCache

with EvaluationCache(sys.argv[1]) as src, EvaluationCache(sys.argv[2]) as dst:
    assert sorted(src.items()) == sorted(dst.items()), "migration dropped entries"
    print(f"migrate parity: {len(dst)} entries survived jsonl -> sqlite")
PY

echo "== campaign (cold cache) =="
run_campaign
echo "== campaign (warm cache) =="
warm_output="$(run_campaign)"
echo "$warm_output"

# The warm run must be fully served from the persistent cache.
if ! grep -q "hit rate 100.0%" <<<"$warm_output"; then
    echo "smoke: warm campaign run was not served from the cache" >&2
    exit 1
fi
# These specs enumerate under the default threshold, so both runs must
# have routed through exhaustive enumeration.
if ! grep -q "strategy: .*=exhaustive" <<<"$warm_output"; then
    echo "smoke: small-space campaign did not default to exhaustive" >&2
    exit 1
fi

echo "== GA kernel backends: bit-identical fronts =="
run_ga_campaign() {
    python -m repro campaign \
        --spec 4096:INT8 --population 16 --generations 6 \
        --ga-backend "$1" --exhaustive-threshold 0 \
        --cache "$cache" --limit 5
}
ga_py_output="$(run_ga_campaign python)"
ga_auto_output="$(run_ga_campaign auto)"
echo "$ga_auto_output"
if ! grep -q "ga kernels: python (requested python)" <<<"$ga_py_output"; then
    echo "smoke: --ga-backend python was not honoured" >&2
    exit 1
fi
if ! grep -q "strategy: 4096:INT8=ga" <<<"$ga_auto_output"; then
    echo "smoke: --exhaustive-threshold 0 did not force the GA" >&2
    exit 1
fi
# The frontier tables (every '|' row) must match across backends.
if [[ "$(grep '^|' <<<"$ga_py_output")" != "$(grep '^|' <<<"$ga_auto_output")" ]]; then
    echo "smoke: GA kernel backends produced different fronts" >&2
    exit 1
fi

echo "== problem registry: discovery + a non-DCIM campaign =="
problems_output="$(python -m repro problems list)"
echo "$problems_output"
for problem in dcim mapping; do
    if ! grep -q "$problem" <<<"$problems_output"; then
        echo "smoke: 'repro problems list' does not list $problem" >&2
        exit 1
    fi
done
mapping_output="$(python -m repro campaign --problem mapping \
    --spec tiny_cnn:INT8 --population 12 --generations 3 --limit 3)"
echo "$mapping_output"
if ! grep -q "Merged mapping frontier" <<<"$mapping_output"; then
    echo "smoke: mapping campaign printed no frontier" >&2
    exit 1
fi

echo "== serve / submit / watch round trip =="
server_log="$workdir/serve.log"
serve_store="$workdir/serve_runs.sqlite"
python -m repro serve --host 127.0.0.1 --port 0 --workers 1 \
    --cache "$workdir/serve_evals.jsonl" \
    --store "$serve_store" --snapshot-every 1 >"$server_log" 2>&1 &
server_pid=$!
url=""
for _ in $(seq 100); do
    url="$(sed -n 's|serving campaigns on \(http://[^ ]*\).*|\1|p' "$server_log")"
    [[ -n "$url" ]] && break
    sleep 0.1
done
if [[ -z "$url" ]]; then
    echo "smoke: campaign server did not come up" >&2
    cat "$server_log" >&2
    exit 1
fi
wait_healthy "$url"
submit_output="$(python -m repro submit --url "$url" \
    --spec 4096:INT4 --population 16 --generations 6 --watch)"
echo "$submit_output"
if ! grep -q "campaign done" <<<"$submit_output"; then
    echo "smoke: submitted campaign did not stream to completion" >&2
    exit 1
fi
job_id="$(sed -n 's/^submitted \(job-[0-9]*\).*/\1/p' <<<"$submit_output")"
# Re-attaching to the finished job must replay the stream and the result.
watch_output="$(python -m repro watch --url "$url" "$job_id")"
if ! grep -q "frontier designs" <<<"$watch_output"; then
    echo "smoke: re-watching $job_id did not return the result" >&2
    exit 1
fi
# v2 API: the server lists both registered problems and serves a
# mapping campaign end to end.
python - "$url" <<'PY'
import sys

from repro.service import CampaignClient, CampaignRequest

client = CampaignClient(sys.argv[1])
names = [p["name"] for p in client.problems()]
assert names == ["dcim", "mapping"], f"GET /api/problems listed {names}"
job_id = client.submit(CampaignRequest(
    problem="mapping", specs=({"network": "tiny_cnn", "wstore": 4096},),
    population_size=12, generations=3,
))
for _ in client.watch(job_id):
    pass
response = client.result(job_id)
assert response.problem == "mapping" and response.frontier
assert response.frontier[0].extras["n_macros"] >= 1
print(f"mapping over HTTP: {len(response.frontier)} frontier points")
PY
echo "== operations: /metrics scrape + dashboard render =="
python - "$url" <<'PY'
import sys
from urllib.request import urlopen

from repro.service import CampaignClient

url = sys.argv[1]
with urlopen(f"{url}/metrics", timeout=10) as answer:
    assert "text/plain" in answer.headers["Content-Type"]
    text = answer.read().decode("utf-8")
for series in ("repro_http_requests_total", "repro_evaluations_total",
               "repro_jobs_submitted_total", "repro_campaign_generations_total"):
    assert series in text, f"/metrics is missing {series}"
payload = CampaignClient(url).metrics()
names = {family["name"] for family in payload["metrics"]}
assert "repro_http_requests_total" in names, names
print(f"/metrics: {len(text.splitlines())} lines, "
      f"/api/metrics: {len(names)} families")
PY
echo "== tracing: list -> show -> Perfetto export round trip =="
trace_id="$(python - "$url" <<'PY'
import sys
import time

from repro.service import CampaignClient

client = CampaignClient(sys.argv[1])
deadline = time.time() + 15
while time.time() < deadline:
    # The submitted campaign's trace completes just after its result:
    # find the one covering the whole submit -> campaign -> chunk path.
    for summary in client.traces():
        detail = client.trace(summary["trace_id"])
        names = {span["name"] for span in detail["spans"]}
        if {"http.request", "campaign", "executor.chunk"} <= names:
            print(summary["trace_id"])
            sys.exit(0)
    time.sleep(0.2)
sys.exit("no end-to-end campaign trace on /api/traces")
PY
)"
show_output="$(python -m repro trace show "$trace_id" --url "$url")"
echo "$show_output"
for span in job.queue_wait campaign generation executor.chunk; do
    if ! grep -q "$span" <<<"$show_output"; then
        echo "smoke: trace $trace_id is missing a $span span" >&2
        exit 1
    fi
done
trace_json="$workdir/trace.json"
python -m repro trace export "$trace_id" --url "$url" --out "$trace_json"
python - "$trace_json" <<'PY'
import json
import sys

with open(sys.argv[1]) as fh:
    payload = json.load(fh)
events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
assert events, "Perfetto export contains no complete events"
print(f"Perfetto export: {len(events)} span events")
PY
sleep 1.5  # let the snapshotter land at least one history row
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
dashboard_out="$workdir/dashboard.html"
python -m repro dashboard --store "$serve_store" --out "$dashboard_out"
if ! grep -q "<html" "$dashboard_out"; then
    echo "smoke: repro dashboard produced no HTML" >&2
    exit 1
fi
python - "$serve_store" <<'PY'
import sys

from repro.store import RunStore

with RunStore(sys.argv[1]) as store:
    history = store.metrics_history()
assert history, "serve --snapshot-every recorded no metrics history"
print(f"dashboard rendered from {len(history)} metrics snapshots")
PY
# Traces persisted into the run registry survive the server: the same
# trace id must still render from the store alone.
store_show="$(python -m repro trace show "$trace_id" --store "$serve_store")"
if ! grep -q "campaign" <<<"$store_show"; then
    echo "smoke: persisted trace $trace_id missing from $serve_store" >&2
    exit 1
fi

echo "== run registry: record -> list -> compare -> gate =="
store="$workdir/runs.sqlite"
python -m repro campaign --spec 4096:INT4 --spec 4096:INT8 \
    --population 16 --generations 6 --cache "$cache" \
    --store "$store" --name good --set-baseline main --limit 3
# An identical re-run records a twin front and must pass the gate.
python -m repro campaign --spec 4096:INT4 --spec 4096:INT8 \
    --population 16 --generations 6 --cache "$cache" \
    --store "$store" --name rerun --baseline main --limit 3
python -m repro runs list --store "$store"
compare_output="$(python -m repro runs compare main rerun --store "$store")"
echo "$compare_output"
if ! grep -q "hypervolume" <<<"$compare_output"; then
    echo "smoke: runs compare printed no hypervolume line" >&2
    exit 1
fi
# An artificially degraded front (worse objectives, half the points)
# must fail the regression gate; recording must also be bit-neutral
# and cheap (store overhead < 10% on this campaign).
python - "$store" <<'PY'
import sys
import time

import numpy as np

from repro.core.spec import DcimSpec
from repro.dse.nsga2 import NSGA2Config
from repro.service import CampaignConfig, run_campaign
from repro.service.api import CampaignResponse, FrontierPoint
from repro.store import RunStore

store = RunStore(sys.argv[1])
front = store.front(store.get_baseline("main").run_id)
degraded = tuple(
    FrontierPoint(precision=p.precision, n=p.n, h=p.h, l=p.l, k=p.k,
                  objectives=tuple(o + abs(o) * 0.25 for o in p.objectives))
    for p in front[::2]
)
store.record_response(CampaignResponse(frontier=degraded),
                      specs=["degraded"], name="degraded")

# Parity + overhead: same campaign with and without recording.
specs = [DcimSpec(wstore=4096, precision=p) for p in ("INT4", "INT8")]
# Force the GA and size it up: the instant exhaustive path (and the
# vectorised GA kernels) shrank campaign wall time to the point where
# the fixed ~1 ms sqlite write would dominate a tiny run's ratio,
# which is not what this overhead bound is about.
config = CampaignConfig(
    nsga2=NSGA2Config(population_size=32, generations=24),
    exhaustive_threshold=0,
)

def run(store):
    start = time.perf_counter()
    result = run_campaign(specs, config, store=store)
    return result, time.perf_counter() - start

(plain, bare_s) = run(None)
(recorded, stored_s) = run(store)
# Take the best of three per mode: one-off scheduler noise on a ~30 ms
# campaign easily exceeds the sqlite write cost being measured.
bare_s = min([bare_s] + [run(None)[1] for _ in range(2)])
stored_s = min([stored_s] + [run(store)[1] for _ in range(2)])
assert np.array_equal(plain.merged_objectives, recorded.merged_objectives), \
    "recording changed the merged front"
overhead = stored_s / bare_s - 1.0
print(f"store overhead: {overhead:+.1%} "
      f"({bare_s*1e3:.0f} ms bare vs {stored_s*1e3:.0f} ms recorded)")
assert overhead < 0.10, f"store overhead {overhead:.1%} exceeds 10%"
store.close()
PY
if python -m repro runs gate degraded --baseline main --store "$store"; then
    echo "smoke: degraded front passed the regression gate" >&2
    exit 1
fi
python -m repro runs gate rerun --baseline main --store "$store" >/dev/null
python -m repro runs gc --store "$store" --keep 2 >/dev/null

echo "== distributed: coordinator + 2 workers, parity + shared cache =="
dist_log="$workdir/serve_dist.log"
python -m repro serve --host 127.0.0.1 --port 0 \
    --workers-remote --lease-ttl 10 >"$dist_log" 2>&1 &
server_pid=$!
url=""
for _ in $(seq 100); do
    url="$(sed -n 's|serving campaigns on \(http://[^ ]*\).*|\1|p' "$dist_log")"
    [[ -n "$url" ]] && break
    sleep 0.1
done
if [[ -z "$url" ]]; then
    echo "smoke: distributed coordinator did not come up" >&2
    cat "$dist_log" >&2
    exit 1
fi
wait_healthy "$url"
for _ in 1 2; do
    python -m repro worker --url "$url" --poll 0.05 --exit-idle 30 \
        >/dev/null 2>&1 &
    worker_pids+=($!)
done
python - "$url" <<'PY'
import sys

from repro.service import (
    CampaignClient,
    CampaignRequest,
    EvaluationCache,
    SpecRequest,
    execute_request,
)


def run(client, request):
    job_id = client.submit(request)
    for _ in client.watch(job_id):
        pass
    return client.result(job_id)


client = CampaignClient(sys.argv[1], retries=4)
request = CampaignRequest(
    specs=(SpecRequest(4096, "INT4"), SpecRequest(8192, "INT8")),
    population_size=16, generations=6, seed=3, exhaustive_threshold=0,
)
response = run(client, request)
reference = execute_request(request, cache=EvaluationCache())
assert [p.to_dict() for p in response.frontier] == [
    p.to_dict() for p in reference.frontier
], "distributed front is not bit-identical to the in-process run"
workers = client.workers()
assert len(workers) == 2, f"expected 2 registered workers, got {workers}"
assert client.cache_info()["entries"] == response.fresh_evaluations > 0

# Cross-worker dedup: a distinct campaign over the same design space
# must be served entirely from the shared remote cache.
warm = run(client, CampaignRequest(
    specs=(SpecRequest(4096, "INT4"), SpecRequest(8192, "INT8")),
    population_size=16, generations=6, seed=3, workers=3,
    exhaustive_threshold=0,
))
assert warm.fresh_evaluations == 0, (
    f"warm distributed run re-evaluated {warm.fresh_evaluations} genomes"
)
print(f"distributed parity: {len(response.frontier)} frontier points via "
      f"{len(workers)} workers; warm re-run 100% cache hits")
PY
for pid in "${worker_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
worker_pids=()
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "smoke: OK"
