#!/usr/bin/env bash
# Smoke test: tier-1 suite plus a tiny end-to-end campaign through the
# evaluation service (cold run populates the cache, warm run must be
# served from it). Run from anywhere; exercises the hot path every PR.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q

echo "== batch/scalar parity =="
python - <<'PY'
from repro.core.spec import DcimSpec
from repro.dse.problem import DcimProblem, objectives_of
from repro.model.engine import HAS_NUMPY

backends = ["python"] + (["numpy"] if HAS_NUMPY else [])
for precision in ("INT8", "BF16"):
    spec = DcimSpec(wstore=4096, precision=precision)
    for backend in backends:
        problem = DcimProblem(spec, engine_backend=backend)
        genomes = problem.codec.enumerate()
        scalar = [
            objectives_of(problem.codec.decode(g).macro_cost(problem.library))
            for g in genomes
        ]
        assert problem.evaluate_batch(genomes) == scalar, (precision, backend)
        print(f"parity OK: {precision} x {backend} ({len(genomes)} genomes)")
PY

echo "== DSE runtime bench (records benchmarks/results/dse_runtime.txt) =="
python -m pytest benchmarks/test_dse_runtime.py -q

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/evals.jsonl"

run_campaign() {
    python -m repro campaign \
        --spec 4096:INT4 --spec 4096:INT8 \
        --population 16 --generations 6 \
        --engine auto --chunk-size 64 \
        --cache "$cache" --limit 5
}

echo "== campaign (cold cache) =="
run_campaign
echo "== campaign (warm cache) =="
warm_output="$(run_campaign)"
echo "$warm_output"

# The warm run must be fully served from the persistent cache.
if ! grep -q "hit rate 100.0%" <<<"$warm_output"; then
    echo "smoke: warm campaign run was not served from the cache" >&2
    exit 1
fi
echo "smoke: OK"
